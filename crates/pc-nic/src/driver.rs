//! The IGB driver receive path, replayed as per-frame op batches.

use crate::alloc::PageAllocator;
use crate::ring::{RxRing, HALF_PAGE_BYTES, RX_BUFFER_BLOCKS};
use pc_cache::{CacheOp, Cycles, Hierarchy, OpBuffer, OpSink, PhysAddr};
use pc_net::EthernetFrame;
use rand::rngs::SmallRng;
use rand::Rng;

/// Software mitigation knob: when (if ever) the driver re-randomizes its
/// ring buffers (paper §VI-b and Figure 16).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum RandomizeMode {
    /// Vulnerable baseline: buffers are allocated once and reused forever.
    #[default]
    Off,
    /// "Fully Randomized Ring Buffer": a fresh page for every packet.
    EveryPacket,
    /// "Partial Randomization": reallocate the whole ring every `n`
    /// packets (the paper evaluates 1 k and 10 k).
    EveryNPackets(u64),
}

/// The IGB hardware's descriptor cap: rings beyond 4096 descriptors
/// do not exist, and `DriverConfig` validation (on construction)
/// enforces it.
pub const MAX_RING_DESCRIPTORS: usize = 4096;

/// Driver tuning and modelling knobs.
#[derive(Copy, Clone, Debug)]
pub struct DriverConfig {
    /// Descriptors in the rx ring: a power of two, at most
    /// [`MAX_RING_DESCRIPTORS`]. IGB default: 256 (max 4096).
    pub ring_size: usize,
    /// Copybreak (`IGB_RX_HDR_LEN`): frames at or below this are memcpy'd
    /// and the buffer reused as-is. Default 256 bytes.
    pub copybreak: u32,
    /// Model the driver's unconditional prefetch of the buffer's second
    /// cache block (the Figure 8 anomaly). Default true.
    pub prefetch_second_block: bool,
    /// Header-to-payload delay in cycles for large frames when DDIO is
    /// off (paper cites < 20 k cycles for ~100 % of packets).
    pub header_to_payload_delay: Cycles,
    /// Fixed per-packet driver overhead in cycles (descriptor handling,
    /// skb bookkeeping).
    pub per_packet_overhead: Cycles,
    /// Cost in cycles of allocating a fresh buffer and rewriting its rx
    /// descriptor through coherent (write-barrier) memory — paid by the
    /// randomization defenses.
    pub realloc_cost: Cycles,
    /// Ring randomization defense mode.
    pub randomize: RandomizeMode,
}

impl DriverConfig {
    /// The paper's setup: 256 descriptors, 256-byte copybreak, prefetch
    /// quirk on, no defenses.
    pub fn paper_defaults() -> Self {
        DriverConfig {
            ring_size: 256,
            copybreak: 256,
            prefetch_second_block: true,
            header_to_payload_delay: 18_000,
            per_packet_overhead: 300,
            realloc_cost: 1_500,
            randomize: RandomizeMode::Off,
        }
    }

    /// Emits the memory traffic of one received frame into `sink` — the
    /// producer half of the driver's op-stream pipeline:
    ///
    /// 1. the NIC's DMA write of each arriving cache block;
    /// 2. the per-packet overhead, then the driver's header read and
    ///    unconditional second-block prefetch;
    /// 3. for frames at or below the copybreak (`small`), the memcpy's
    ///    source reads.
    ///
    /// One emitter, three engines — the paths cannot diverge:
    /// streamed through [`Hierarchy::applier`] this is
    /// [`IgbDriver::receive`]; recorded into an [`OpBuffer`] it is the
    /// shardable batch [`IgbDriver::receive_burst`] flushes; emitted
    /// into a [`Hierarchy`] directly it *is* the per-access oracle
    /// ([`IgbDriver::receive_scalar`]).
    pub fn emit_frame_ops(
        &self,
        buffer_addr: PhysAddr,
        blocks: u32,
        small: bool,
        sink: &mut impl OpSink,
    ) {
        // 1. NIC DMA: one write per cache block of the frame.
        for b in 0..blocks {
            sink.op(CacheOp::io_write(buffer_addr.add_blocks(u64::from(b))));
        }
        // 2. Driver picks the frame up: reads the header...
        sink.advance(self.per_packet_overhead);
        sink.op(CacheOp::read(buffer_addr));
        // ...and always prefetches the second block ("most Ethernet
        // packets have at least two blocks").
        if self.prefetch_second_block {
            sink.op(CacheOp::read(buffer_addr.add_blocks(1)));
        }
        // 3. Small frame: memcpy the payload out of the buffer now.
        if small {
            for b in 2..blocks {
                sink.op(CacheOp::read(buffer_addr.add_blocks(u64::from(b))));
            }
        }
    }

    /// How a frame lands in a ring buffer under this configuration:
    /// `(blocks, small)` — cache blocks occupied (truncated to the
    /// buffer) and whether the frame is at or below the copybreak.
    /// One definition shared by every receive path and by window
    /// planners (the `TestBed`), so the classification cannot diverge
    /// from what [`DriverConfig::emit_frame_ops`] replays.
    pub fn frame_shape(&self, frame: EthernetFrame) -> (u32, bool) {
        (
            frame.cache_blocks().min(RX_BUFFER_BLOCKS),
            frame.bytes() <= self.copybreak,
        )
    }

    /// Number of ops [`DriverConfig::emit_frame_ops`] emits for a frame
    /// of the given shape. Kept adjacent to the emitter so the count
    /// cannot drift from the emission.
    pub fn frame_op_count(&self, blocks: u32, small: bool) -> u64 {
        let mut n = u64::from(blocks) + 1; // DMA writes + header read
        if self.prefetch_second_block {
            n += 1;
        }
        if small {
            n += u64::from(blocks.saturating_sub(2)); // memcpy source reads
        }
        n
    }

    /// A lower bound on the cycles the clock moves over one frame's
    /// receive: the per-packet overhead lead plus every emitted op at
    /// `min_op_latency` (the cheapest latency the model can charge).
    /// Burst window planners use this to prove a queued arrival is
    /// already in the past without observing the mid-stream clock.
    pub fn min_frame_cycles(&self, frame: EthernetFrame, min_op_latency: Cycles) -> Cycles {
        let (blocks, small) = self.frame_shape(frame);
        self.min_shape_cycles(blocks, small, min_op_latency)
    }

    /// [`DriverConfig::min_frame_cycles`] for an already-classified
    /// frame shape — the form the `TestBed` window planner calls, since
    /// it needs `(blocks, small)` anyway for its op-count estimate.
    /// This is the single definition of the bound.
    pub fn min_shape_cycles(&self, blocks: u32, small: bool, min_op_latency: Cycles) -> Cycles {
        self.per_packet_overhead + self.frame_op_count(blocks, small) * min_op_latency
    }

    /// Upper-bound counterpart of [`DriverConfig::min_shape_cycles`]:
    /// the per-packet overhead plus every emitted op priced at
    /// `max_op_latency` (the costliest latency the model can charge).
    /// Window planners use min and max together — the min proves a
    /// queued arrival is already in the past, the max proves a pending
    /// deferred read is still in the future — to fuse across boundaries
    /// without observing the mid-stream clock.
    pub fn max_shape_cycles(&self, blocks: u32, small: bool, max_op_latency: Cycles) -> Cycles {
        self.per_packet_overhead + self.frame_op_count(blocks, small) * max_op_latency
    }

    /// The exact randomization-defense cost the driver charges when its
    /// packet counter reaches `count` (1-based: the `count`-th packet
    /// ever received): zero except on defense ticks. A pure function of
    /// the configuration and the counter — the `EveryNPackets` ring
    /// re-randomization fires on exact multiples — so window planners
    /// fold the *exact* future defense costs into both clock bounds
    /// instead of flushing at every tick. (The adaptive cache defense
    /// has no term here: its period evaluations re-partition sets but
    /// charge no cycles — their cost surfaces in stats, not the clock.)
    pub fn defense_cost_for_packet(&self, count: u64) -> Cycles {
        match self.randomize {
            RandomizeMode::Off => 0,
            RandomizeMode::EveryPacket => self.realloc_cost,
            RandomizeMode::EveryNPackets(n) => {
                if count.is_multiple_of(n) {
                    self.realloc_cost * self.ring_size as Cycles
                } else {
                    0
                }
            }
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `ring_size` is zero, exceeds the IGB descriptor cap
    /// (4096), or is not a power of two (the hardware constraint the
    /// ring's wrap-around indexing assumes), or if `copybreak`
    /// exceeds a buffer.
    fn validate(&self) {
        assert!(self.ring_size > 0, "ring must have descriptors");
        assert!(
            self.ring_size <= MAX_RING_DESCRIPTORS,
            "ring size {} exceeds the IGB descriptor cap of {}",
            self.ring_size,
            MAX_RING_DESCRIPTORS
        );
        assert!(
            self.ring_size.is_power_of_two(),
            "ring size {} must be a power of two",
            self.ring_size
        );
        assert!(
            self.copybreak <= HALF_PAGE_BYTES,
            "copybreak exceeds buffer size"
        );
        if let RandomizeMode::EveryNPackets(n) = self.randomize {
            assert!(n > 0, "randomization interval must be non-zero");
        }
    }
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig::paper_defaults()
    }
}

/// What the driver knows about a frame mid-burst, handed to the
/// frame-extension hook of [`IgbDriver::receive_burst_with`] right
/// after the frame's own ops were emitted (or flushed, for a deferring
/// frame): enough for a caller to fuse its per-frame follow-up traffic
/// — an application's payload read, a consumer touch — into the same
/// shardable batch instead of replaying it per access afterwards.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct FrameMeta {
    /// Position of the frame within the burst (0-based).
    pub index: usize,
    /// Ring descriptor index the frame landed in.
    pub buffer_index: usize,
    /// DMA address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks the frame occupied.
    pub blocks: u32,
    /// The frame was at or below the copybreak (memcpy'd and reused).
    pub small: bool,
}

/// What happened when one frame was received.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RxEvent {
    /// Ring descriptor index that was filled.
    pub buffer_index: usize,
    /// DMA target address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks the frame occupied.
    pub blocks: u32,
    /// The buffer's page was reallocated (NUMA-remote, busy, or the
    /// randomization defense fired).
    pub reallocated: bool,
    /// The buffer flipped to the other half-page (large frame reuse).
    pub flipped: bool,
    /// CPU reads the networking stack will issue later (header-to-payload
    /// latency without DDIO); feed these to a
    /// [`crate::DeferredReads`] queue.
    pub deferred_reads: Vec<(Cycles, PhysAddr)>,
}

/// What [`IgbDriver::receive_fused`] recorded for one frame: the ring
/// placement and disposition (as in [`RxEvent`]) plus, for a deferring
/// frame, *which segment* of the fused batch its payload reads hang
/// off — the due times themselves don't exist yet; the caller
/// reconstructs them from the segmented replay's subtotals.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct FusedRxEvent {
    /// Ring descriptor index that was filled.
    pub buffer_index: usize,
    /// DMA target address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks the frame occupied.
    pub blocks: u32,
    /// The buffer's page was reallocated.
    pub reallocated: bool,
    /// The buffer flipped to the other half-page.
    pub flipped: bool,
    /// `Some(seg)` when the frame defers payload reads (large frame,
    /// no DDIO): reads of blocks `2..blocks` become due
    /// [`DriverConfig::header_to_payload_delay`] after segment `seg`'s
    /// reconstructed end clock — the cycle the per-frame engine's
    /// `h.now()` would have shown when it computed the dues.
    pub deferral_segment: Option<usize>,
}

/// The driver model.
///
/// One `receive` call per frame replays, against the [`Hierarchy`]:
///
/// 1. the NIC's DMA writes of each arriving cache block (DDIO or memory
///    according to the hierarchy's [`pc_cache::DdioMode`]);
/// 2. the driver's header read and unconditional second-block prefetch;
/// 3. for small frames: the memcpy's source reads, then buffer reuse;
/// 4. for large frames: the fragment attach, the `igb_can_reuse_rx_page`
///    reuse-or-reallocate decision, and the half-page flip;
/// 5. the configured randomization defense, if any.
///
/// The memory traffic of steps 1–3 is *emitted* as a per-frame op
/// stream (the op-stream IR; see [`pc_cache::CacheOp`]) and replayed by
/// one of three byte-identical engines: [`IgbDriver::receive`] streams
/// it through [`Hierarchy::applier`] (the default),
/// [`IgbDriver::receive_burst`] fuses many frames into one shardable
/// op batch, and [`IgbDriver::receive_scalar`] applies it one access
/// at a time — the equivalence oracle the other two are pinned
/// against.
#[derive(Clone, Debug)]
pub struct IgbDriver {
    cfg: DriverConfig,
    ring: RxRing,
    alloc: PageAllocator,
    packets: u64,
    reallocations: u64,
    defense_overhead: Cycles,
    /// Burst op batch, reused across `receive_burst` calls (capacity
    /// carried; content never outlives one flush).
    ops: OpBuffer,
}

impl IgbDriver {
    /// Initializes the driver: allocates the ring and arms every
    /// descriptor, exactly once — the buffers then live until a defense
    /// or NUMA condition replaces them.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DriverConfig, mut alloc: PageAllocator, _rng: &mut SmallRng) -> Self {
        cfg.validate();
        let ring = RxRing::allocate(cfg.ring_size, &mut alloc);
        IgbDriver {
            cfg,
            ring,
            alloc,
            packets: 0,
            reallocations: 0,
            defense_overhead: 0,
            ops: OpBuffer::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// The rx ring (ground-truth instrumentation).
    pub fn ring(&self) -> &RxRing {
        &self.ring
    }

    /// Packets received so far.
    pub fn packets_received(&self) -> u64 {
        self.packets
    }

    /// Buffer reallocations performed (NUMA, busy pages, defenses).
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Extra cycles spent in randomization defenses so far.
    pub fn defense_overhead_cycles(&self) -> Cycles {
        self.defense_overhead
    }

    /// Receives one frame into the next ring buffer, replaying its
    /// memory traffic as one op batch (the driver's fast path).
    ///
    /// Frames longer than a 2048-byte buffer are truncated to the buffer
    /// (jumbo handling is out of scope, as in the paper).
    pub fn receive(
        &mut self,
        h: &mut Hierarchy,
        frame: EthernetFrame,
        rng: &mut SmallRng,
    ) -> RxEvent {
        let idx = self.ring.advance();
        let buffer_addr = self.ring.buffer(idx).dma_addr();
        let (blocks, small) = self.cfg.frame_shape(frame);

        // Stream the frame's ops through the applier engine: one pass,
        // totals flushed when the sink drops. (Per-frame batches are
        // too small to shard; multi-frame batching is
        // [`IgbDriver::receive_burst`].)
        let mut sink = h.applier();
        self.cfg
            .emit_frame_ops(buffer_addr, blocks, small, &mut sink);
        drop(sink);

        self.finish_receive(h, rng, idx, buffer_addr, blocks, small)
    }

    /// [`IgbDriver::receive`] replayed access-by-access: the same emit
    /// code pointed at the hierarchy (which applies each op as it is
    /// emitted) instead of at the op batch.
    ///
    /// This is the **equivalence oracle** for the batched path — the two
    /// are byte-identical in ring state, statistics, clock and RNG
    /// stream (`tests/batch_equivalence.rs` pins it) — and the path for
    /// experiments that need to observe per-access latencies in the
    /// middle of a frame.
    pub fn receive_scalar(
        &mut self,
        h: &mut Hierarchy,
        frame: EthernetFrame,
        rng: &mut SmallRng,
    ) -> RxEvent {
        let idx = self.ring.advance();
        let buffer_addr = self.ring.buffer(idx).dma_addr();
        let (blocks, small) = self.cfg.frame_shape(frame);
        self.cfg.emit_frame_ops(buffer_addr, blocks, small, h);
        self.finish_receive(h, rng, idx, buffer_addr, blocks, small)
    }

    /// The non-emitting tail of a receive: deferred payload reads, the
    /// reuse/flip/reallocate decision and the randomization defense.
    /// Runs after the frame's ops have replayed (whichever path replayed
    /// them), so `h.now()` is the cycle the driver finished its reads.
    fn finish_receive(
        &mut self,
        h: &mut Hierarchy,
        rng: &mut SmallRng,
        idx: usize,
        buffer_addr: PhysAddr,
        blocks: u32,
        small: bool,
    ) -> RxEvent {
        let ddio = h.llc().mode().allocates_in_llc();
        let deferred_reads = if !small && !ddio {
            self.deferred_payload_reads(h.now(), buffer_addr, blocks)
        } else {
            Vec::new()
        };
        let (reallocated, flipped, defense_cost) = self.frame_disposition(rng, idx, small);
        if defense_cost > 0 {
            h.advance(defense_cost);
        }
        RxEvent {
            buffer_index: idx,
            buffer_addr,
            blocks,
            reallocated,
            flipped,
            deferred_reads,
        }
    }

    /// The deferred payload reads of one large frame when DDIO is off:
    /// the networking stack touches blocks 2.. a header-to-payload
    /// delay after `now` — the cycle the driver's header reads
    /// finished. (With DDIO the blocks are already in the LLC, so those
    /// reads are silent hits and nothing defers.) One definition shared
    /// by the per-frame and burst paths, so the due-time model cannot
    /// diverge between them.
    fn deferred_payload_reads(
        &self,
        now: Cycles,
        buffer_addr: PhysAddr,
        blocks: u32,
    ) -> Vec<(Cycles, PhysAddr)> {
        let due = now + self.cfg.header_to_payload_delay;
        (2..blocks)
            .map(|b| (due, buffer_addr.add_blocks(u64::from(b))))
            .collect()
    }

    /// The buffer-management tail shared by every receive path: the
    /// reuse/flip/reallocate decision and the randomization defense.
    /// Touches only driver state and the RNG — never the hierarchy —
    /// so the burst path can run it between emits with the replay still
    /// pending. Returns `(reallocated, flipped, defense_cost)`; the
    /// caller advances the clock by the cost (directly, or as a lead on
    /// the next op).
    fn frame_disposition(
        &mut self,
        rng: &mut SmallRng,
        idx: usize,
        small: bool,
    ) -> (bool, bool, Cycles) {
        let mut reallocated = false;
        let mut flipped = false;
        if small {
            // "we can reuse buffer as-is, just make sure it is local"
            if self.ring.buffer(idx).page().remote {
                self.reallocate(idx);
                reallocated = true;
            }
        } else {
            // igb_can_reuse_rx_page: remote pages and pages still held by
            // the stack are not reused.
            let busy = rng.gen_bool(0.01); // page_count != 1: rare
            if self.ring.buffer(idx).page().remote || busy {
                self.reallocate(idx);
                reallocated = true;
            } else {
                self.ring.buffer_mut(idx).flip();
                flipped = true;
            }
        }
        let mut defense_cost = 0;
        match self.cfg.randomize {
            RandomizeMode::Off => {}
            RandomizeMode::EveryPacket => {
                self.reallocate(idx);
                self.defense_overhead += self.cfg.realloc_cost;
                defense_cost = self.cfg.realloc_cost;
                reallocated = true;
            }
            RandomizeMode::EveryNPackets(n) => {
                if (self.packets + 1).is_multiple_of(n) {
                    let cost = self.randomize_ring();
                    self.defense_overhead += cost;
                    defense_cost = cost;
                }
            }
        }
        self.packets += 1;
        (reallocated, flipped, defense_cost)
    }

    /// Receives a burst of back-to-back frames as **one pipelined op
    /// stream**: every frame's ops are emitted into a single batch,
    /// defense costs become leads between frames, and the hierarchy
    /// replays the whole stream in as few flushes as the frames allow.
    ///
    /// A flush is forced only when a frame must observe the mid-stream
    /// clock — a large frame without DDIO, whose deferred payload reads
    /// are due relative to the cycle its header reads finished. With
    /// DDIO (the paper's main configurations) nothing in the stream
    /// reads the clock, so the whole burst replays in one batch —
    /// sharded by slice when it crosses the dispatch threshold.
    ///
    /// Byte-identical to calling [`IgbDriver::receive`] once per frame
    /// with no observation in between: same RxEvents (deferred due
    /// times included), same final clock, statistics, ring state and
    /// RNG stream (`tests/batch_equivalence.rs` pins it). Callers that
    /// interleave probes or record per-frame timestamps must keep
    /// feeding frames one at a time.
    pub fn receive_burst(
        &mut self,
        h: &mut Hierarchy,
        frames: &[EthernetFrame],
        rng: &mut SmallRng,
    ) -> Vec<RxEvent> {
        self.receive_burst_with(h, frames, rng, |_, _| {})
    }

    /// [`IgbDriver::receive_burst`] with a **frame-extension hook**: after
    /// each frame's own ops are emitted (and, for a deferring frame,
    /// flushed), `ext` is called with the frame's [`FrameMeta`] and the
    /// burst's pending [`OpBuffer`], so per-frame follow-up traffic — an
    /// application reading the payload out of the skb, a consumer
    /// touching the delivered bytes — joins the same shardable batch.
    ///
    /// The hook's contract is the op-stream determinism contract: it may
    /// emit ops and advances derived from the `FrameMeta` (and its own
    /// state), but it must not observe the hierarchy — the pending
    /// buffer has not replayed yet. Ops it emits land after the frame's
    /// driver reads and before the next frame's DMA, exactly where a
    /// per-frame caller would have issued them; defense costs still
    /// become leads *after* the hook's ops, which only moves pure clock
    /// advances past each other (order-independent by the contract).
    pub fn receive_burst_with(
        &mut self,
        h: &mut Hierarchy,
        frames: &[EthernetFrame],
        rng: &mut SmallRng,
        mut ext: impl FnMut(&FrameMeta, &mut OpBuffer),
    ) -> Vec<RxEvent> {
        let ddio = h.llc().mode().allocates_in_llc();
        let mut events = Vec::with_capacity(frames.len());
        let mut ops = std::mem::take(&mut self.ops);
        ops.clear();
        for (index, &frame) in frames.iter().enumerate() {
            let idx = self.ring.advance();
            let buffer_addr = self.ring.buffer(idx).dma_addr();
            let (blocks, small) = self.cfg.frame_shape(frame);
            self.cfg
                .emit_frame_ops(buffer_addr, blocks, small, &mut ops);
            let deferred_reads = if !small && !ddio {
                // This frame's due time needs the clock at exactly this
                // point of the stream: flush the pipeline up to here.
                h.apply_ops(&ops);
                ops.clear();
                self.deferred_payload_reads(h.now(), buffer_addr, blocks)
            } else {
                Vec::new()
            };
            ext(
                &FrameMeta {
                    index,
                    buffer_index: idx,
                    buffer_addr,
                    blocks,
                    small,
                },
                &mut ops,
            );
            let (reallocated, flipped, defense_cost) = self.frame_disposition(rng, idx, small);
            if defense_cost > 0 {
                ops.advance(defense_cost);
            }
            events.push(RxEvent {
                buffer_index: idx,
                buffer_addr,
                blocks,
                reallocated,
                flipped,
                deferred_reads,
            });
        }
        h.apply_ops(&ops);
        ops.clear();
        self.ops = ops;
        events
    }

    /// Receives one frame into a caller-held fused-burst buffer without
    /// ever observing the hierarchy — the emit half of the cross-gap
    /// fusion pipeline.
    ///
    /// Opens a segment (see [`pc_cache::OpBuffer::mark_segment`]) and
    /// emits the frame's ops into it; a deferring frame (large, no
    /// DDIO) closes its emit with a *second* mark, so the segment's
    /// reconstructed end clock is exactly the `h.now()` the per-frame
    /// engine reads payload-read dues from. Defense costs are emitted
    /// as pending advances, which the next mark (or the buffer's
    /// trailing advance) attributes to this frame — the same
    /// reads-then-defense order every other receive path replays.
    ///
    /// Ring state, RNG draws and counters advance exactly as in
    /// [`IgbDriver::receive`]; only the replay (and therefore the
    /// clock) is left to the caller, who runs the whole batch through
    /// [`Hierarchy::run_ops_segmented`] and applies arrivals
    /// retroactively per segment. `ddio` must be the replaying
    /// hierarchy's [`pc_cache::DdioMode::allocates_in_llc`].
    pub fn receive_fused(
        &mut self,
        ops: &mut OpBuffer,
        ddio: bool,
        frame: EthernetFrame,
        rng: &mut SmallRng,
    ) -> FusedRxEvent {
        let idx = self.ring.advance();
        let buffer_addr = self.ring.buffer(idx).dma_addr();
        let (blocks, small) = self.cfg.frame_shape(frame);
        ops.mark_segment();
        self.cfg.emit_frame_ops(buffer_addr, blocks, small, ops);
        let deferral_segment = if !small && !ddio {
            let mut seg = ops.segments() - 1;
            // Fault site `stale-deferred-segment-index`: the fused
            // receive files a keyed deferral under the previous
            // segment, so its due reconstructs from the wrong segment
            // base and the payload reads replay too early.
            if pc_cache::fault::fires_keyed(
                pc_cache::fault::FaultSite::StaleDeferredSegmentIndex,
                seg as u64,
            ) {
                seg = seg.saturating_sub(1);
            }
            // Close the emit here: the dues hang off this boundary's
            // reconstructed clock, the defense cost lands after it.
            ops.mark_segment();
            Some(seg)
        } else {
            None
        };
        let (reallocated, flipped, defense_cost) = self.frame_disposition(rng, idx, small);
        if defense_cost > 0 {
            ops.advance(defense_cost);
        }
        FusedRxEvent {
            buffer_index: idx,
            buffer_addr,
            blocks,
            reallocated,
            flipped,
            deferral_segment,
        }
    }

    /// Replaces the page behind descriptor `idx` with a fresh one.
    fn reallocate(&mut self, idx: usize) {
        let old = self.ring.buffer(idx).page().base;
        let fresh = self.alloc.alloc_page();
        self.ring.buffer_mut(idx).replace_page(fresh);
        self.alloc.free_page(old);
        self.reallocations += 1;
    }

    /// Reallocates every descriptor (partial randomization tick),
    /// returning the modelled cost.
    fn randomize_ring(&mut self) -> Cycles {
        for idx in 0..self.ring.len() {
            self.reallocate(idx);
        }
        self.cfg.realloc_cost * self.ring.len() as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_cache::{CacheGeometry, DdioMode, Domain};
    use rand::SeedableRng;

    fn setup(mode: DdioMode) -> (Hierarchy, IgbDriver, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(3);
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
        let drv = IgbDriver::new(
            DriverConfig::paper_defaults(),
            PageAllocator::new(17),
            &mut rng,
        );
        (h, drv, rng)
    }

    fn frame(bytes: u32) -> EthernetFrame {
        EthernetFrame::new(bytes).unwrap()
    }

    #[test]
    fn packets_fill_buffers_in_ring_order() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        for i in 0..10 {
            let ev = drv.receive(&mut h, frame(64), &mut rng);
            assert_eq!(ev.buffer_index, i % drv.ring().len());
        }
        assert_eq!(drv.packets_received(), 10);
    }

    #[test]
    fn ddio_puts_frame_blocks_in_llc() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev = drv.receive(&mut h, frame(256), &mut rng);
        assert_eq!(ev.blocks, 4);
        for b in 0..4 {
            assert!(
                h.llc().contains(ev.buffer_addr.add_blocks(b)),
                "block {b} missing from LLC"
            );
        }
        assert!(ev.deferred_reads.is_empty(), "DDIO defers nothing");
    }

    #[test]
    fn one_block_frame_still_touches_block_one() {
        // Figure 8's anomaly: the driver prefetches block 1 regardless.
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev = drv.receive(&mut h, frame(64), &mut rng);
        assert_eq!(ev.blocks, 1);
        assert!(h.llc().contains(ev.buffer_addr.add_blocks(1)));
        // ...but not block 2.
        assert!(!h.llc().contains(ev.buffer_addr.add_blocks(2)));
    }

    #[test]
    fn small_frames_reuse_buffer_in_place() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev1 = drv.receive(&mut h, frame(128), &mut rng);
        assert!(!ev1.reallocated && !ev1.flipped);
        // Wrap all the way around the ring: the same buffer address
        // serves descriptor 0 again.
        for _ in 0..drv.ring().len() - 1 {
            drv.receive(&mut h, frame(128), &mut rng);
        }
        let ev2 = drv.receive(&mut h, frame(128), &mut rng);
        assert_eq!(ev2.buffer_index, ev1.buffer_index);
        assert_eq!(
            ev2.buffer_addr, ev1.buffer_addr,
            "small-frame buffers are stable"
        );
    }

    #[test]
    fn large_frames_flip_to_second_half_page() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev1 = drv.receive(&mut h, frame(1000), &mut rng);
        if ev1.flipped {
            let buf = drv.ring().buffer(ev1.buffer_index);
            assert_eq!(buf.page_offset(), HALF_PAGE_BYTES);
            assert_eq!(buf.dma_addr().block_in_page(), 32);
        }
    }

    #[test]
    fn no_ddio_defers_payload_reads() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::Disabled);
        let ev = drv.receive(&mut h, frame(1514), &mut rng);
        assert!(!ev.deferred_reads.is_empty());
        for (at, _) in &ev.deferred_reads {
            assert!(*at + drv.config().header_to_payload_delay > h.now());
        }
        // Without DDIO the payload blocks are *not* in the LLC yet.
        assert!(!h.llc().contains(ev.buffer_addr.add_blocks(5)));
    }

    #[test]
    fn no_ddio_header_is_fetched_by_driver() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::Disabled);
        let ev = drv.receive(&mut h, frame(1514), &mut rng);
        // The driver's header read demand-fetched block 0 into the LLC as
        // a CPU line.
        assert!(h.llc().contains(ev.buffer_addr));
        let ss = h.llc().locate(ev.buffer_addr);
        assert!(h.llc().domain_count(ss, Domain::Cpu) >= 1);
    }

    #[test]
    fn remote_pages_are_reallocated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let alloc = PageAllocator::new(17).with_remote_probability(1.0);
        let mut drv = IgbDriver::new(DriverConfig::paper_defaults(), alloc, &mut rng);
        let ev = drv.receive(&mut h, frame(64), &mut rng);
        assert!(ev.reallocated, "remote page must not be reused");
        assert!(drv.reallocations() >= 1);
    }

    #[test]
    fn every_packet_randomization_changes_buffers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig {
            randomize: RandomizeMode::EveryPacket,
            ..Default::default()
        };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
        let before = drv.ring().buffer(0).page().base;
        drv.receive(&mut h, frame(64), &mut rng);
        let after = drv.ring().buffer(0).page().base;
        assert_ne!(before, after);
        assert!(drv.defense_overhead_cycles() > 0);
    }

    #[test]
    fn periodic_randomization_fires_on_schedule() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig {
            ring_size: 8,
            randomize: RandomizeMode::EveryNPackets(5),
            ..Default::default()
        };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
        let before = drv.ring().page_addresses();
        for _ in 0..4 {
            drv.receive(&mut h, frame(64), &mut rng);
        }
        assert_eq!(drv.ring().page_addresses(), before, "not yet");
        drv.receive(&mut h, frame(64), &mut rng);
        assert_ne!(drv.ring().page_addresses(), before, "5th packet triggers");
    }

    #[test]
    fn oversized_frames_truncate_to_buffer() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev = drv.receive(&mut h, frame(1522), &mut rng);
        assert!(ev.blocks <= RX_BUFFER_BLOCKS);
    }

    #[test]
    #[should_panic(expected = "randomization interval")]
    fn zero_interval_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = DriverConfig {
            randomize: RandomizeMode::EveryNPackets(0),
            ..Default::default()
        };
        IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
    }

    #[test]
    #[should_panic(expected = "exceeds the IGB descriptor cap")]
    fn oversized_ring_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = DriverConfig {
            ring_size: 8192,
            ..Default::default()
        };
        IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
    }

    #[test]
    #[should_panic(expected = "must be a power of two")]
    fn non_power_of_two_ring_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = DriverConfig {
            ring_size: 192,
            ..Default::default()
        };
        IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
    }

    #[test]
    fn max_ring_size_is_accepted() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = DriverConfig {
            ring_size: MAX_RING_DESCRIPTORS,
            ..Default::default()
        };
        let drv = IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
        assert_eq!(drv.ring().len(), MAX_RING_DESCRIPTORS);
    }
}
