//! The IGB driver receive path, replayed access-by-access.

use crate::alloc::PageAllocator;
use crate::ring::{RxRing, HALF_PAGE_BYTES, RX_BUFFER_BLOCKS};
use pc_cache::{Cycles, Hierarchy, PhysAddr};
use pc_net::EthernetFrame;
use rand::rngs::SmallRng;
use rand::Rng;

/// Software mitigation knob: when (if ever) the driver re-randomizes its
/// ring buffers (paper §VI-b and Figure 16).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum RandomizeMode {
    /// Vulnerable baseline: buffers are allocated once and reused forever.
    #[default]
    Off,
    /// "Fully Randomized Ring Buffer": a fresh page for every packet.
    EveryPacket,
    /// "Partial Randomization": reallocate the whole ring every `n`
    /// packets (the paper evaluates 1 k and 10 k).
    EveryNPackets(u64),
}

/// Driver tuning and modelling knobs.
#[derive(Copy, Clone, Debug)]
pub struct DriverConfig {
    /// Descriptors in the rx ring. IGB default: 256 (max 4096).
    pub ring_size: usize,
    /// Copybreak (`IGB_RX_HDR_LEN`): frames at or below this are memcpy'd
    /// and the buffer reused as-is. Default 256 bytes.
    pub copybreak: u32,
    /// Model the driver's unconditional prefetch of the buffer's second
    /// cache block (the Figure 8 anomaly). Default true.
    pub prefetch_second_block: bool,
    /// Header-to-payload delay in cycles for large frames when DDIO is
    /// off (paper cites < 20 k cycles for ~100 % of packets).
    pub header_to_payload_delay: Cycles,
    /// Fixed per-packet driver overhead in cycles (descriptor handling,
    /// skb bookkeeping).
    pub per_packet_overhead: Cycles,
    /// Cost in cycles of allocating a fresh buffer and rewriting its rx
    /// descriptor through coherent (write-barrier) memory — paid by the
    /// randomization defenses.
    pub realloc_cost: Cycles,
    /// Ring randomization defense mode.
    pub randomize: RandomizeMode,
}

impl DriverConfig {
    /// The paper's setup: 256 descriptors, 256-byte copybreak, prefetch
    /// quirk on, no defenses.
    pub fn paper_defaults() -> Self {
        DriverConfig {
            ring_size: 256,
            copybreak: 256,
            prefetch_second_block: true,
            header_to_payload_delay: 18_000,
            per_packet_overhead: 300,
            realloc_cost: 1_500,
            randomize: RandomizeMode::Off,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `ring_size` is zero or `copybreak` exceeds a buffer.
    fn validate(&self) {
        assert!(self.ring_size > 0, "ring must have descriptors");
        assert!(
            self.copybreak <= HALF_PAGE_BYTES,
            "copybreak exceeds buffer size"
        );
        if let RandomizeMode::EveryNPackets(n) = self.randomize {
            assert!(n > 0, "randomization interval must be non-zero");
        }
    }
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig::paper_defaults()
    }
}

/// What happened when one frame was received.
#[derive(Clone, Debug)]
pub struct RxEvent {
    /// Ring descriptor index that was filled.
    pub buffer_index: usize,
    /// DMA target address of the buffer's first block.
    pub buffer_addr: PhysAddr,
    /// Cache blocks the frame occupied.
    pub blocks: u32,
    /// The buffer's page was reallocated (NUMA-remote, busy, or the
    /// randomization defense fired).
    pub reallocated: bool,
    /// The buffer flipped to the other half-page (large frame reuse).
    pub flipped: bool,
    /// CPU reads the networking stack will issue later (header-to-payload
    /// latency without DDIO); feed these to a
    /// [`crate::DeferredReads`] queue.
    pub deferred_reads: Vec<(Cycles, PhysAddr)>,
}

/// The driver model.
///
/// One `receive` call per frame replays, against the [`Hierarchy`]:
///
/// 1. the NIC's DMA writes of each arriving cache block (DDIO or memory
///    according to the hierarchy's [`pc_cache::DdioMode`]);
/// 2. the driver's header read and unconditional second-block prefetch;
/// 3. for small frames: the memcpy's source reads, then buffer reuse;
/// 4. for large frames: the fragment attach, the `igb_can_reuse_rx_page`
///    reuse-or-reallocate decision, and the half-page flip;
/// 5. the configured randomization defense, if any.
#[derive(Clone, Debug)]
pub struct IgbDriver {
    cfg: DriverConfig,
    ring: RxRing,
    alloc: PageAllocator,
    packets: u64,
    reallocations: u64,
    defense_overhead: Cycles,
}

impl IgbDriver {
    /// Initializes the driver: allocates the ring and arms every
    /// descriptor, exactly once — the buffers then live until a defense
    /// or NUMA condition replaces them.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DriverConfig, mut alloc: PageAllocator, _rng: &mut SmallRng) -> Self {
        cfg.validate();
        let ring = RxRing::allocate(cfg.ring_size, &mut alloc);
        IgbDriver {
            cfg,
            ring,
            alloc,
            packets: 0,
            reallocations: 0,
            defense_overhead: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// The rx ring (ground-truth instrumentation).
    pub fn ring(&self) -> &RxRing {
        &self.ring
    }

    /// Packets received so far.
    pub fn packets_received(&self) -> u64 {
        self.packets
    }

    /// Buffer reallocations performed (NUMA, busy pages, defenses).
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Extra cycles spent in randomization defenses so far.
    pub fn defense_overhead_cycles(&self) -> Cycles {
        self.defense_overhead
    }

    /// Receives one frame into the next ring buffer.
    ///
    /// Frames longer than a 2048-byte buffer are truncated to the buffer
    /// (jumbo handling is out of scope, as in the paper).
    pub fn receive(
        &mut self,
        h: &mut Hierarchy,
        frame: EthernetFrame,
        rng: &mut SmallRng,
    ) -> RxEvent {
        let idx = self.ring.advance();
        let buffer_addr = self.ring.buffer(idx).dma_addr();
        let blocks = frame.cache_blocks().min(RX_BUFFER_BLOCKS);
        let ddio = h.llc().mode().allocates_in_llc();

        // 1. NIC DMA: one write per cache block of the frame.
        for b in 0..blocks {
            h.io_write(buffer_addr.add_blocks(u64::from(b)));
        }

        // 2. Driver picks the frame up: reads the header...
        h.advance(self.cfg.per_packet_overhead);
        h.cpu_read(buffer_addr);
        // ...and always prefetches the second block ("most Ethernet
        // packets have at least two blocks").
        if self.cfg.prefetch_second_block {
            h.cpu_read(buffer_addr.add_blocks(1));
        }

        let mut deferred_reads = Vec::new();
        let mut reallocated = false;
        let mut flipped = false;

        if frame.bytes() <= self.cfg.copybreak {
            // 3. Small frame: memcpy the payload out of the buffer now.
            for b in 2..blocks {
                h.cpu_read(buffer_addr.add_blocks(u64::from(b)));
            }
            // "we can reuse buffer as-is, just make sure it is local"
            if self.ring.buffer(idx).page().remote {
                self.reallocate(idx);
                reallocated = true;
            }
        } else {
            // 4. Large frame: page attached to the skb as a fragment; the
            // stack touches the payload a bit later. With DDIO the blocks
            // are already in the LLC, so those reads are silent hits; we
            // only need to model them when DDIO is off.
            if !ddio {
                let due = h.now() + self.cfg.header_to_payload_delay;
                for b in 2..blocks {
                    deferred_reads.push((due, buffer_addr.add_blocks(u64::from(b))));
                }
            }
            // igb_can_reuse_rx_page: remote pages and pages still held by
            // the stack are not reused.
            let busy = rng.gen_bool(0.01); // page_count != 1: rare
            if self.ring.buffer(idx).page().remote || busy {
                self.reallocate(idx);
                reallocated = true;
            } else {
                self.ring.buffer_mut(idx).flip();
                flipped = true;
            }
        }

        // 5. Randomization defenses.
        match self.cfg.randomize {
            RandomizeMode::Off => {}
            RandomizeMode::EveryPacket => {
                self.reallocate(idx);
                self.defense_overhead += self.cfg.realloc_cost;
                h.advance(self.cfg.realloc_cost);
                reallocated = true;
            }
            RandomizeMode::EveryNPackets(n) => {
                if (self.packets + 1).is_multiple_of(n) {
                    let cost = self.randomize_ring();
                    self.defense_overhead += cost;
                    h.advance(cost);
                }
            }
        }

        self.packets += 1;
        RxEvent {
            buffer_index: idx,
            buffer_addr,
            blocks,
            reallocated,
            flipped,
            deferred_reads,
        }
    }

    /// Replaces the page behind descriptor `idx` with a fresh one.
    fn reallocate(&mut self, idx: usize) {
        let old = self.ring.buffer(idx).page().base;
        let fresh = self.alloc.alloc_page();
        self.ring.buffer_mut(idx).replace_page(fresh);
        self.alloc.free_page(old);
        self.reallocations += 1;
    }

    /// Reallocates every descriptor (partial randomization tick),
    /// returning the modelled cost.
    fn randomize_ring(&mut self) -> Cycles {
        for idx in 0..self.ring.len() {
            self.reallocate(idx);
        }
        self.cfg.realloc_cost * self.ring.len() as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_cache::{CacheGeometry, DdioMode, Domain};
    use rand::SeedableRng;

    fn setup(mode: DdioMode) -> (Hierarchy, IgbDriver, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(3);
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
        let drv = IgbDriver::new(
            DriverConfig::paper_defaults(),
            PageAllocator::new(17),
            &mut rng,
        );
        (h, drv, rng)
    }

    fn frame(bytes: u32) -> EthernetFrame {
        EthernetFrame::new(bytes).unwrap()
    }

    #[test]
    fn packets_fill_buffers_in_ring_order() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        for i in 0..10 {
            let ev = drv.receive(&mut h, frame(64), &mut rng);
            assert_eq!(ev.buffer_index, i % drv.ring().len());
        }
        assert_eq!(drv.packets_received(), 10);
    }

    #[test]
    fn ddio_puts_frame_blocks_in_llc() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev = drv.receive(&mut h, frame(256), &mut rng);
        assert_eq!(ev.blocks, 4);
        for b in 0..4 {
            assert!(
                h.llc().contains(ev.buffer_addr.add_blocks(b)),
                "block {b} missing from LLC"
            );
        }
        assert!(ev.deferred_reads.is_empty(), "DDIO defers nothing");
    }

    #[test]
    fn one_block_frame_still_touches_block_one() {
        // Figure 8's anomaly: the driver prefetches block 1 regardless.
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev = drv.receive(&mut h, frame(64), &mut rng);
        assert_eq!(ev.blocks, 1);
        assert!(h.llc().contains(ev.buffer_addr.add_blocks(1)));
        // ...but not block 2.
        assert!(!h.llc().contains(ev.buffer_addr.add_blocks(2)));
    }

    #[test]
    fn small_frames_reuse_buffer_in_place() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev1 = drv.receive(&mut h, frame(128), &mut rng);
        assert!(!ev1.reallocated && !ev1.flipped);
        // Wrap all the way around the ring: the same buffer address
        // serves descriptor 0 again.
        for _ in 0..drv.ring().len() - 1 {
            drv.receive(&mut h, frame(128), &mut rng);
        }
        let ev2 = drv.receive(&mut h, frame(128), &mut rng);
        assert_eq!(ev2.buffer_index, ev1.buffer_index);
        assert_eq!(
            ev2.buffer_addr, ev1.buffer_addr,
            "small-frame buffers are stable"
        );
    }

    #[test]
    fn large_frames_flip_to_second_half_page() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev1 = drv.receive(&mut h, frame(1000), &mut rng);
        if ev1.flipped {
            let buf = drv.ring().buffer(ev1.buffer_index);
            assert_eq!(buf.page_offset(), HALF_PAGE_BYTES);
            assert_eq!(buf.dma_addr().block_in_page(), 32);
        }
    }

    #[test]
    fn no_ddio_defers_payload_reads() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::Disabled);
        let ev = drv.receive(&mut h, frame(1514), &mut rng);
        assert!(!ev.deferred_reads.is_empty());
        for (at, _) in &ev.deferred_reads {
            assert!(*at + drv.config().header_to_payload_delay > h.now());
        }
        // Without DDIO the payload blocks are *not* in the LLC yet.
        assert!(!h.llc().contains(ev.buffer_addr.add_blocks(5)));
    }

    #[test]
    fn no_ddio_header_is_fetched_by_driver() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::Disabled);
        let ev = drv.receive(&mut h, frame(1514), &mut rng);
        // The driver's header read demand-fetched block 0 into the LLC as
        // a CPU line.
        assert!(h.llc().contains(ev.buffer_addr));
        let ss = h.llc().locate(ev.buffer_addr);
        assert!(h.llc().domain_count(ss, Domain::Cpu) >= 1);
    }

    #[test]
    fn remote_pages_are_reallocated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let alloc = PageAllocator::new(17).with_remote_probability(1.0);
        let mut drv = IgbDriver::new(DriverConfig::paper_defaults(), alloc, &mut rng);
        let ev = drv.receive(&mut h, frame(64), &mut rng);
        assert!(ev.reallocated, "remote page must not be reused");
        assert!(drv.reallocations() >= 1);
    }

    #[test]
    fn every_packet_randomization_changes_buffers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig {
            randomize: RandomizeMode::EveryPacket,
            ..Default::default()
        };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
        let before = drv.ring().buffer(0).page().base;
        drv.receive(&mut h, frame(64), &mut rng);
        let after = drv.ring().buffer(0).page().base;
        assert_ne!(before, after);
        assert!(drv.defense_overhead_cycles() > 0);
    }

    #[test]
    fn periodic_randomization_fires_on_schedule() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig {
            ring_size: 8,
            randomize: RandomizeMode::EveryNPackets(5),
            ..Default::default()
        };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
        let before = drv.ring().page_addresses();
        for _ in 0..4 {
            drv.receive(&mut h, frame(64), &mut rng);
        }
        assert_eq!(drv.ring().page_addresses(), before, "not yet");
        drv.receive(&mut h, frame(64), &mut rng);
        assert_ne!(drv.ring().page_addresses(), before, "5th packet triggers");
    }

    #[test]
    fn oversized_frames_truncate_to_buffer() {
        let (mut h, mut drv, mut rng) = setup(DdioMode::enabled());
        let ev = drv.receive(&mut h, frame(1522), &mut rng);
        assert!(ev.blocks <= RX_BUFFER_BLOCKS);
    }

    #[test]
    #[should_panic(expected = "randomization interval")]
    fn zero_interval_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = DriverConfig {
            randomize: RandomizeMode::EveryNPackets(0),
            ..Default::default()
        };
        IgbDriver::new(cfg, PageAllocator::new(17), &mut rng);
    }
}
