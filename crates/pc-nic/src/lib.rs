//! # pc-nic — behavioural model of the Intel IGB receive path
//!
//! The Packet Chasing attack works because of very specific, documented
//! behaviours of the Linux IGB gigabit Ethernet driver (paper §III-A):
//!
//! * the driver allocates **256 rx buffers once** and recycles them for
//!   the lifetime of the driver, so their cache locations are stable;
//! * each 2048-byte buffer is **half-page aligned** — one buffer per
//!   4 KiB page initially, with the second half used after large packets
//!   flip `page_offset` (`igb_can_reuse_rx_page`);
//! * frames at or below the 256-byte copybreak are **memcpy'd** and the
//!   buffer reused as-is; larger frames attach the page as a fragment and
//!   flip to the other half-page;
//! * the driver **prefetches the second cache block** of every buffer
//!   regardless of packet size (the Figure 8 anomaly);
//! * buffers on a **remote NUMA node** are not reused but reallocated.
//!
//! [`IgbDriver::receive`] replays all of this against a
//! [`pc_cache::Hierarchy`]: DMA writes for each arriving cache block
//! (through DDIO or memory depending on the hierarchy's mode), then the
//! driver's own reads, then the reuse/flip/reallocate decision.
//!
//! The crate also hosts the software mitigations of §VI that live in the
//! driver: [`RandomizeMode`] (full / periodic partial ring randomization)
//! and configurable ring sizes.
//!
//! ## Example
//!
//! ```
//! use pc_cache::{CacheGeometry, DdioMode, Hierarchy};
//! use pc_net::EthernetFrame;
//! use pc_nic::{DriverConfig, IgbDriver, PageAllocator};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
//! let mut drv = IgbDriver::new(DriverConfig::default(), PageAllocator::new(1), &mut rng);
//! let ev = drv.receive(&mut h, EthernetFrame::new(192)?, &mut rng);
//! assert_eq!(ev.blocks, 3);
//! # Ok::<(), pc_net::FrameSizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod deferred;
mod driver;
mod ring;
mod rss;

pub use alloc::{PageAllocator, PageRef};
pub use deferred::DeferredReads;
pub use driver::{
    DriverConfig, FrameMeta, FusedRxEvent, IgbDriver, RandomizeMode, RxEvent, MAX_RING_DESCRIPTORS,
};
pub use ring::{RxBuffer, RxRing, HALF_PAGE_BYTES, RX_BUFFER_BLOCKS};
pub use rss::{RssConfig, MAX_RSS_QUEUES};
