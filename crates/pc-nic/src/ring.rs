//! The rx descriptor ring shared between NIC and driver.

use crate::alloc::{PageAllocator, PageRef};
use pc_cache::PhysAddr;

/// Bytes per rx buffer: the IGB driver packs two 2048-byte buffers into
/// each 4 KiB page.
pub const HALF_PAGE_BYTES: u32 = 2048;

/// Cache blocks per rx buffer (2048 / 64).
pub const RX_BUFFER_BLOCKS: u32 = HALF_PAGE_BYTES / 64;

/// One rx descriptor's buffer: a page plus which half is armed for DMA.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RxBuffer {
    page: PageRef,
    /// 0 or [`HALF_PAGE_BYTES`]; flipped by `igb_can_reuse_rx_page` after
    /// large frames.
    page_offset: u32,
}

impl RxBuffer {
    /// A buffer armed at the first half of `page`.
    pub fn new(page: PageRef) -> Self {
        RxBuffer {
            page,
            page_offset: 0,
        }
    }

    /// The page backing this buffer.
    pub fn page(&self) -> PageRef {
        self.page
    }

    /// Current DMA target address (page base + offset).
    pub fn dma_addr(&self) -> PhysAddr {
        self.page.base.add_bytes(u64::from(self.page_offset))
    }

    /// Current half-page offset (0 or 2048).
    pub fn page_offset(&self) -> u32 {
        self.page_offset
    }

    /// `rx_buffer->page_offset ^= IGB_RX_BUFSZ`: switch halves.
    pub fn flip(&mut self) {
        self.page_offset ^= HALF_PAGE_BYTES;
    }

    /// Replaces the backing page (reallocation), re-arming at offset 0.
    pub fn replace_page(&mut self, page: PageRef) {
        self.page = page;
        self.page_offset = 0;
    }
}

/// The circular rx ring: a fixed array of buffers filled strictly in
/// order. "As long as the driver reuses the buffers for descriptors, the
/// order of the buffers remains constant" — the property the sequencer
/// recovers.
#[derive(Clone, Debug)]
pub struct RxRing {
    buffers: Vec<RxBuffer>,
    next: usize,
    filled: u64,
}

impl RxRing {
    /// Allocates a ring of `size` buffers, one fresh page each.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn allocate(size: usize, alloc: &mut PageAllocator) -> Self {
        assert!(size > 0, "ring must have at least one descriptor");
        let buffers = (0..size)
            .map(|_| RxBuffer::new(alloc.alloc_page()))
            .collect();
        RxRing {
            buffers,
            next: 0,
            filled: 0,
        }
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// `true` if the ring has no descriptors (constructor forbids this).
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Index of the descriptor the next packet will fill.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Total packets that have passed through the ring.
    pub fn filled_count(&self) -> u64 {
        self.filled
    }

    /// The buffer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn buffer(&self, index: usize) -> &RxBuffer {
        &self.buffers[index]
    }

    /// Mutable access for the driver's reuse/flip/replace decisions.
    pub(crate) fn buffer_mut(&mut self, index: usize) -> &mut RxBuffer {
        &mut self.buffers[index]
    }

    /// Claims the next descriptor in ring order, advancing the cursor.
    pub fn advance(&mut self) -> usize {
        let idx = self.next;
        self.next = (self.next + 1) % self.buffers.len();
        self.filled += 1;
        idx
    }

    /// Ground truth: the DMA address of every descriptor, in ring order
    /// starting from descriptor 0.
    ///
    /// This is what the paper obtains by instrumenting the driver
    /// ("we instrument the driver code to print the physical addresses of
    /// the ring buffers") to validate Figures 5/6 and Table I.
    pub fn dma_addresses(&self) -> Vec<PhysAddr> {
        self.buffers.iter().map(|b| b.dma_addr()).collect()
    }

    /// Ground truth: page base of every descriptor in ring order.
    pub fn page_addresses(&self) -> Vec<PhysAddr> {
        self.buffers.iter().map(|b| b.page().base).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> (RxRing, PageAllocator) {
        let mut alloc = PageAllocator::new(11);
        let ring = RxRing::allocate(n, &mut alloc);
        (ring, alloc)
    }

    #[test]
    fn buffers_start_page_aligned() {
        let (r, _) = ring(64);
        for i in 0..r.len() {
            assert!(r.buffer(i).dma_addr().is_page_aligned());
            assert_eq!(r.buffer(i).page_offset(), 0);
        }
    }

    #[test]
    fn advance_wraps_in_order() {
        let (mut r, _) = ring(4);
        let order: Vec<usize> = (0..10).map(|_| r.advance()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        assert_eq!(r.filled_count(), 10);
        assert_eq!(r.next_index(), 2);
    }

    #[test]
    fn flip_switches_halves_and_back() {
        let (mut r, _) = ring(1);
        let page = r.buffer(0).page().base;
        r.buffer_mut(0).flip();
        assert_eq!(r.buffer(0).dma_addr(), page.add_bytes(2048));
        assert_eq!(r.buffer(0).dma_addr().block_in_page(), 32);
        r.buffer_mut(0).flip();
        assert_eq!(r.buffer(0).dma_addr(), page);
    }

    #[test]
    fn replace_rearms_at_offset_zero() {
        let (mut r, mut alloc) = ring(1);
        r.buffer_mut(0).flip();
        let fresh = alloc.alloc_page();
        r.buffer_mut(0).replace_page(fresh);
        assert_eq!(r.buffer(0).page_offset(), 0);
        assert_eq!(r.buffer(0).dma_addr(), fresh.base);
    }

    #[test]
    fn ground_truth_lists_match_ring_order() {
        let (r, _) = ring(8);
        let dma = r.dma_addresses();
        let pages = r.page_addresses();
        assert_eq!(dma.len(), 8);
        assert_eq!(
            dma, pages,
            "with no flips, DMA addresses are the page bases"
        );
    }

    #[test]
    fn pages_are_distinct() {
        let (r, _) = ring(256);
        let mut pages = r.page_addresses();
        pages.sort();
        pages.dedup();
        assert_eq!(pages.len(), 256, "each buffer lives on its own page");
    }
}
