//! Receive-side scaling: the seeded Toeplitz steer that spreads flows
//! across rx queues.
//!
//! Real multi-queue NICs hash each packet's flow tuple with a Toeplitz
//! hash over a device-programmed secret key and use the low bits to
//! pick an rx queue; all packets of one flow land on one queue (and
//! so on one ring, one interrupt vector, one DDIO stream). This
//! module reproduces that contract deterministically:
//!
//! * **Steering is a pure function of `(seed, flow tuple)`** — no RNG
//!   stream is consulted, so the same schedule steers identically on
//!   every engine, thread count and replay.
//! * **The legacy (all-zero) flow pins to queue 0**: schedules built
//!   before flows existed behave exactly like the single-ring model
//!   whatever the queue count.
//! * **Queue count 1 short-circuits to queue 0** for every flow.
//!
//! The fault site `swapped-queue-steer` hooks the steer: when armed it
//! routes keyed flows to the next queue index, which the golden-pinned
//! multi-queue scenarios must notice (`repro fault-matrix`).

use pc_cache::fault::{self, FaultSite};
use pc_net::FlowTuple;

/// Upper bound on modelled rx queues (the 82576's 16 RSS queues).
pub const MAX_RSS_QUEUES: usize = 16;

/// Receive-side scaling configuration: how many rx queues the NIC
/// exposes and the seed its Toeplitz key is derived from.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RssConfig {
    queues: usize,
    seed: u64,
    /// The 128-bit Toeplitz key expanded from the seed (the hash of a
    /// 96-bit tuple consumes `96 + 32` key bits).
    key: [u8; 16],
}

impl RssConfig {
    /// The pre-RSS model: one queue, everything on it.
    pub fn single_queue() -> Self {
        RssConfig::new(1, 0)
    }

    /// `queues` rx queues steering with a Toeplitz key derived from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero or exceeds [`MAX_RSS_QUEUES`].
    pub fn new(queues: usize, seed: u64) -> Self {
        assert!(queues > 0, "RSS needs at least one queue");
        assert!(
            queues <= MAX_RSS_QUEUES,
            "queue count {queues} exceeds the RSS cap of {MAX_RSS_QUEUES}"
        );
        RssConfig {
            queues,
            seed,
            key: expand_key(seed),
        }
    }

    /// Number of rx queues.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The steering seed the Toeplitz key was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw 32-bit Toeplitz hash of `flow` under this
    /// configuration's key — a pure function of `(seed, flow)`.
    pub fn hash(&self, flow: FlowTuple) -> u32 {
        toeplitz(&self.key, &flow.hash_bytes())
    }

    /// The rx queue `flow` steers to: `hash % queues`, with the
    /// legacy all-zero flow pinned to queue 0 (see the module docs).
    /// Fault site `swapped-queue-steer` (keyed on the flow digest)
    /// mutates the result to the next queue index; at queue count 1
    /// the mutation is inert, so armed single-queue runs stay
    /// byte-identical.
    pub fn steer(&self, flow: FlowTuple) -> usize {
        let q = if self.queues == 1 || flow.is_legacy() {
            0
        } else {
            self.hash(flow) as usize % self.queues
        };
        if fault::fires_keyed(FaultSite::SwappedQueueSteer, flow.key()) {
            (q + 1) % self.queues
        } else {
            q
        }
    }
}

impl Default for RssConfig {
    fn default() -> Self {
        RssConfig::single_queue()
    }
}

/// Expands a 64-bit seed into the 128-bit Toeplitz key (splitmix64
/// finalizer, twice — the same mixer the workspace's seed derivation
/// uses, reimplemented locally so steering stays dependency-free).
fn expand_key(seed: u64) -> [u8; 16] {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let a = splitmix(seed);
    let b = splitmix(a);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&a.to_be_bytes());
    key[8..].copy_from_slice(&b.to_be_bytes());
    key
}

/// The 32-bit window of `key` starting at bit `bit` (big-endian bit
/// order, as Toeplitz hardware shifts it).
fn key_window(key: &[u8; 16], bit: usize) -> u32 {
    let byte = bit / 8;
    let shift = bit % 8;
    let mut w = 0u64;
    for j in 0..5 {
        w = (w << 8) | u64::from(key[byte + j]);
    }
    ((w >> (8 - shift)) & 0xFFFF_FFFF) as u32
}

/// The classic Toeplitz hash: XOR, for every set bit `i` of `data`,
/// the 32-bit key window starting at bit `i`.
fn toeplitz(key: &[u8; 16], data: &[u8; 12]) -> u32 {
    let mut h = 0u32;
    for (i, &b) in data.iter().enumerate() {
        for bit in 0..8 {
            if b & (0x80 >> bit) != 0 {
                h ^= key_window(key, i * 8 + bit);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_is_a_pure_function_of_seed_and_flow() {
        let a = RssConfig::new(4, 2020);
        let b = RssConfig::new(4, 2020);
        for i in 0..256 {
            let flow = FlowTuple::client(i, 80);
            assert_eq!(a.steer(flow), b.steer(flow), "flow {i}");
            assert_eq!(a.hash(flow), b.hash(flow), "flow {i}");
        }
    }

    #[test]
    fn seed_changes_the_mapping() {
        let a = RssConfig::new(8, 1);
        let b = RssConfig::new(8, 2);
        let moved = (0..256)
            .filter(|&i| {
                let flow = FlowTuple::client(i, 80);
                a.steer(flow) != b.steer(flow)
            })
            .count();
        assert!(moved > 64, "a reseeded key re-steers flows (moved {moved})");
    }

    #[test]
    fn all_queues_receive_some_flows() {
        for queues in [2usize, 4, 8, 16] {
            let rss = RssConfig::new(queues, 2020);
            let mut counts = vec![0usize; queues];
            for i in 0..512 {
                counts[rss.steer(FlowTuple::client(i, 80))] += 1;
            }
            for (q, &n) in counts.iter().enumerate() {
                assert!(n > 0, "queue {q}/{queues} never steered to");
            }
        }
    }

    #[test]
    fn legacy_flow_pins_to_queue_zero() {
        for queues in [1usize, 2, 4, 16] {
            for seed in [0u64, 1, 2020] {
                assert_eq!(RssConfig::new(queues, seed).steer(FlowTuple::default()), 0);
            }
        }
    }

    #[test]
    fn single_queue_steers_everything_to_zero() {
        let rss = RssConfig::single_queue();
        for i in 0..64 {
            assert_eq!(rss.steer(FlowTuple::client(i, 80)), 0);
        }
    }

    #[test]
    fn toeplitz_is_linear_in_the_input() {
        // Toeplitz over GF(2) is linear: H(a ^ b) == H(a) ^ H(b).
        // Pins that the windowed implementation really is the hash
        // and not an ad-hoc mixer.
        let key = expand_key(7);
        let a = FlowTuple::new(0x0102_0304, 0x0a0b_0c0d, 80, 443).hash_bytes();
        let b = FlowTuple::new(0xffff_0000, 0x1234_5678, 7, 9).hash_bytes();
        let mut xored = [0u8; 12];
        for i in 0..12 {
            xored[i] = a[i] ^ b[i];
        }
        assert_eq!(
            toeplitz(&key, &xored),
            toeplitz(&key, &a) ^ toeplitz(&key, &b)
        );
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_rejected() {
        RssConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the RSS cap")]
    fn oversized_queue_count_rejected() {
        RssConfig::new(17, 1);
    }
}
