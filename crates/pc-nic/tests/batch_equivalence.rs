//! Batched receive ↔ per-access receive equivalence.
//!
//! [`IgbDriver::receive`] replays each frame's memory traffic as one op
//! batch; [`IgbDriver::receive_scalar`] points the same emitter at the
//! hierarchy, access by access. The two must be **byte-identical** in
//! everything observable — per-frame [`RxEvent`]s (deferred-read due
//! times included), the cycle clock, LLC and memory statistics, ring
//! page placement, reallocation counts and defense overheads — for
//! every DDIO mode × randomization defense, under whatever
//! `PC_BENCH_THREADS` setting the suite runs with (CI runs it at 1 and
//! 4). This is the contract that lets the heaviest end-to-end workloads
//! (ring recovery, fingerprinting, the covert channel) ride the batched
//! engine without perturbing a single figure.

use pc_cache::{CacheGeometry, DdioMode, Hierarchy};
use pc_nic::{DriverConfig, IgbDriver, PageAllocator, RandomizeMode, RxEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic frame-size mix crossing the copybreak in both
/// directions: minimum, small, copybreak-exact, just-over, MTU.
fn frame_sizes() -> Vec<u32> {
    (0..600u32)
        .map(|i| match i % 5 {
            0 => 64,
            1 => 128,
            2 => 256,
            3 => 257,
            _ => 1514,
        })
        .collect()
}

fn all_modes() -> [DdioMode; 3] {
    [
        DdioMode::Disabled,
        DdioMode::enabled(),
        DdioMode::adaptive(),
    ]
}

fn all_randomize() -> [RandomizeMode; 4] {
    [
        RandomizeMode::Off,
        RandomizeMode::EveryPacket,
        RandomizeMode::EveryNPackets(64),
        RandomizeMode::EveryNPackets(7),
    ]
}

/// One machine: hierarchy + driver + rng, both sides built from the
/// same seeds so any divergence is the replay path's fault.
fn machine(
    mode: DdioMode,
    randomize: RandomizeMode,
    remote_p: f64,
) -> (Hierarchy, IgbDriver, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(0x19b);
    let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
    let cfg = DriverConfig {
        ring_size: 32,
        randomize,
        ..DriverConfig::paper_defaults()
    };
    let alloc = PageAllocator::new(0xa110c).with_remote_probability(remote_p);
    let drv = IgbDriver::new(cfg, alloc, &mut rng);
    (h, drv, rng)
}

#[test]
fn batched_receive_is_byte_identical_to_per_access_receive() {
    for mode in all_modes() {
        for randomize in all_randomize() {
            let (mut h_b, mut drv_b, mut rng_b) = machine(mode, randomize, 0.05);
            let (mut h_s, mut drv_s, mut rng_s) = machine(mode, randomize, 0.05);
            for (i, &bytes) in frame_sizes().iter().enumerate() {
                let frame = pc_net::EthernetFrame::new(bytes).expect("legal size");
                let ev_b: RxEvent = drv_b.receive(&mut h_b, frame, &mut rng_b);
                let ev_s: RxEvent = drv_s.receive_scalar(&mut h_s, frame, &mut rng_s);
                assert_eq!(
                    ev_b, ev_s,
                    "event diverged: frame {i} {mode:?} {randomize:?}"
                );
                assert_eq!(
                    h_b.now(),
                    h_s.now(),
                    "clock diverged: frame {i} {mode:?} {randomize:?}"
                );
            }
            assert_eq!(
                h_b.llc().stats(),
                h_s.llc().stats(),
                "{mode:?} {randomize:?}"
            );
            for slice in 0..h_b.llc().geometry().slices() {
                assert_eq!(
                    h_b.llc().slice_stats(slice),
                    h_s.llc().slice_stats(slice),
                    "per-slice stats diverged: {mode:?} {randomize:?} slice {slice}"
                );
            }
            assert_eq!(
                h_b.memory_stats(),
                h_s.memory_stats(),
                "{mode:?} {randomize:?}"
            );
            assert_eq!(
                drv_b.ring().page_addresses(),
                drv_s.ring().page_addresses(),
                "ring placement diverged: {mode:?} {randomize:?}"
            );
            assert_eq!(drv_b.packets_received(), drv_s.packets_received());
            assert_eq!(drv_b.reallocations(), drv_s.reallocations());
            assert_eq!(
                drv_b.defense_overhead_cycles(),
                drv_s.defense_overhead_cycles(),
                "{mode:?} {randomize:?}"
            );
        }
    }
}

/// The pipelined burst path against the per-access oracle: bursts of
/// mixed frames (forcing mid-burst flushes in `Disabled` mode, pure
/// single-batch replay with DDIO) must leave everything byte-identical
/// — per-frame events with their deferred due times, clock, stats,
/// ring, RNG stream — for every mode × defense.
#[test]
fn burst_receive_is_byte_identical_to_per_access_receive() {
    let frames: Vec<pc_net::EthernetFrame> = frame_sizes()
        .iter()
        .map(|&b| pc_net::EthernetFrame::new(b).expect("legal size"))
        .collect();
    for mode in all_modes() {
        for randomize in all_randomize() {
            let (mut h_b, mut drv_b, mut rng_b) = machine(mode, randomize, 0.05);
            let (mut h_s, mut drv_s, mut rng_s) = machine(mode, randomize, 0.05);
            for (i, burst) in frames.chunks(97).enumerate() {
                let evs_b = drv_b.receive_burst(&mut h_b, burst, &mut rng_b);
                let evs_s: Vec<RxEvent> = burst
                    .iter()
                    .map(|&f| drv_s.receive_scalar(&mut h_s, f, &mut rng_s))
                    .collect();
                assert_eq!(evs_b, evs_s, "burst {i} diverged: {mode:?} {randomize:?}");
                assert_eq!(
                    h_b.now(),
                    h_s.now(),
                    "clock diverged after burst {i}: {mode:?} {randomize:?}"
                );
            }
            assert_eq!(
                h_b.llc().stats(),
                h_s.llc().stats(),
                "{mode:?} {randomize:?}"
            );
            assert_eq!(
                h_b.memory_stats(),
                h_s.memory_stats(),
                "{mode:?} {randomize:?}"
            );
            assert_eq!(
                drv_b.ring().page_addresses(),
                drv_s.ring().page_addresses(),
                "ring placement diverged: {mode:?} {randomize:?}"
            );
            assert_eq!(
                drv_b.defense_overhead_cycles(),
                drv_s.defense_overhead_cycles()
            );
        }
    }
}

/// The buffer contents the frames left behind must agree too — residency
/// is what the spy observes, so it gets its own check over every block
/// the largest frame touches.
#[test]
fn residency_after_mixed_traffic_is_identical() {
    for mode in all_modes() {
        let (mut h_b, mut drv_b, mut rng_b) = machine(mode, RandomizeMode::Off, 0.0);
        let (mut h_s, mut drv_s, mut rng_s) = machine(mode, RandomizeMode::Off, 0.0);
        let mut touched = Vec::new();
        for &bytes in frame_sizes().iter().take(200) {
            let frame = pc_net::EthernetFrame::new(bytes).expect("legal size");
            let ev = drv_b.receive(&mut h_b, frame, &mut rng_b);
            drv_s.receive_scalar(&mut h_s, frame, &mut rng_s);
            for b in 0..u64::from(ev.blocks) {
                touched.push(ev.buffer_addr.add_blocks(b));
            }
        }
        for addr in touched {
            assert_eq!(
                h_b.llc().contains(addr),
                h_s.llc().contains(addr),
                "residency diverged at {addr} in {mode:?}"
            );
        }
    }
}
