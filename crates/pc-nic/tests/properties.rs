//! Property tests for the driver model's invariants.

use pc_cache::{CacheGeometry, DdioMode, Hierarchy};
use pc_net::EthernetFrame;
use pc_nic::{DriverConfig, IgbDriver, PageAllocator, RandomizeMode, RX_BUFFER_BLOCKS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn frame_strategy() -> impl Strategy<Value = EthernetFrame> {
    (64u32..=1522).prop_map(|b| EthernetFrame::new(b).expect("range is legal"))
}

fn mode_strategy() -> impl Strategy<Value = DdioMode> {
    prop_oneof![
        Just(DdioMode::Disabled),
        Just(DdioMode::enabled()),
        Just(DdioMode::adaptive())
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Buffers are always half-page aligned: DMA targets land on block 0
    /// or block 32 of a page, never anywhere else. This is the invariant
    /// the whole attack rests on.
    #[test]
    fn dma_addresses_are_half_page_aligned(
        frames in proptest::collection::vec(frame_strategy(), 1..300),
        mode in mode_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), mode);
        let cfg = DriverConfig { ring_size: 16, ..DriverConfig::paper_defaults() };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(seed), &mut rng);
        for f in frames {
            let ev = drv.receive(&mut h, f, &mut rng);
            let block = ev.buffer_addr.block_in_page();
            prop_assert!(block == 0 || block == 32, "buffer at block {block}");
            prop_assert!(ev.blocks >= 1 && ev.blocks <= RX_BUFFER_BLOCKS);
        }
    }

    /// Ring order is strictly sequential modulo the ring size, regardless
    /// of traffic: descriptor i+1 always follows descriptor i.
    #[test]
    fn ring_order_is_sequential(
        frames in proptest::collection::vec(frame_strategy(), 1..200),
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig { ring_size: 32, ..DriverConfig::paper_defaults() };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(seed), &mut rng);
        let mut expected = 0usize;
        for f in frames {
            let ev = drv.receive(&mut h, f, &mut rng);
            prop_assert_eq!(ev.buffer_index, expected);
            expected = (expected + 1) % 32;
        }
    }

    /// Without any defense or NUMA surprises, small-frame traffic keeps
    /// every buffer's address stable across full ring cycles.
    #[test]
    fn small_frames_keep_ring_stable(seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig { ring_size: 16, ..DriverConfig::paper_defaults() };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(seed), &mut rng);
        let before = drv.ring().dma_addresses();
        for _ in 0..64 {
            drv.receive(&mut h, EthernetFrame::new(128).expect("legal"), &mut rng);
        }
        prop_assert_eq!(drv.ring().dma_addresses(), before);
    }

    /// Full randomization really does change the DMA address of a
    /// descriptor on every packet.
    #[test]
    fn full_randomization_never_repeats(seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let cfg = DriverConfig {
            ring_size: 4,
            randomize: RandomizeMode::EveryPacket,
            ..DriverConfig::paper_defaults()
        };
        let mut drv = IgbDriver::new(cfg, PageAllocator::new(seed), &mut rng);
        let mut last = drv.ring().dma_addresses();
        for _ in 0..16 {
            let ev = drv.receive(&mut h, EthernetFrame::new(200).expect("legal"), &mut rng);
            let now = drv.ring().dma_addresses();
            prop_assert_ne!(now[ev.buffer_index], last[ev.buffer_index]);
            last = now;
        }
    }
}
