//! # pc-par — deterministic thread-parallel primitives
//!
//! The whole reproduction rests on one guarantee: **thread count never
//! changes results**. Every parallel construct in the workspace goes
//! through this crate so the guarantee has a single implementation:
//!
//! * [`parallel_map`] — ordered fan-out of independent work items; item
//!   `i`'s result lands at index `i` regardless of which worker ran it.
//! * [`parallel_zip_chunks_threads`] — the range-partitioned variant:
//!   two equal-length mutable slices are cut into the *same* contiguous
//!   chunks and each chunk pair runs on its own worker (the sharded LLC
//!   dispatcher pairs shard groups with their op bins this way).
//! * [`max_threads`] — the one place the `PC_BENCH_THREADS` environment
//!   variable is read. `PC_BENCH_THREADS=1` forces every parallel path
//!   in the workspace (experiment repetitions, the sharded LLC engine,
//!   fingerprint captures) down its sequential branch end to end.
//! * [`mix_seed`] — the shared seed-derivation mix. Work that runs on
//!   another thread must *never* consume a caller's RNG stream; it gets
//!   its own `SmallRng` seeded with `mix_seed(base, salt)` where `salt`
//!   identifies the item (slice number, trial index, …). Sequential and
//!   parallel schedules then draw identical streams by construction.
//! * [`stream_seed`] — the *one* per-item seed-derivation helper: every
//!   fan-out in the workspace names its family with a [`SeedDomain`]
//!   and derives item seeds as `stream_seed(base, domain, index)`
//!   instead of hand-rolling its own salting scheme around `mix_seed`.
//! * [`parallel_map_scratch_threads`] — the scratch-carrying fan-out:
//!   each worker builds one scratch value (a reusable `TestBed`, an op
//!   buffer…) and threads it through every item it runs, so a fleet of
//!   thousands of small work items doesn't pay a fresh allocation
//!   curve per item.
//!
//! This crate sits below `pc-cache` (which shards the LLC simulation by
//! slice) and is re-exported as `pc_bench::par` for the harness. The
//! README next to this crate maps each primitive to its users; the
//! workspace-wide determinism contract is spelled out in the top-level
//! `ARCHITECTURE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Upper bound on worker threads (`PC_BENCH_THREADS` overrides; `1`
/// forces sequential execution, e.g. for debugging or the CI
/// determinism gate).
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("PC_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Derives an independent seed from a base seed and a work-item salt
/// (splitmix64 finalizer — one multiply-xor cascade per draw).
///
/// Every parallelized loop in the workspace uses this mix so that a
/// work item's RNG stream depends only on `(seed, salt)`, never on the
/// schedule that ran it. Distinct salts give uncorrelated streams even
/// when base seeds are small consecutive integers.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A named fan-out family for [`stream_seed`].
///
/// Two different fan-outs running from the same base seed must never
/// reuse each other's RNG streams just because they happen to use the
/// same item indices; the domain is what separates them. The `Slice`
/// and `Capture` domains predate this enum and keep their original
/// derivation — plain `mix_seed(base, index)` — because golden outputs
/// across the workspace pin the streams they produce; domains added
/// since (`Tenant`, `Repetition`) fold a domain tag into the base
/// first, so their streams cannot collide with each other or with the
/// legacy domains even at equal indices.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum SeedDomain {
    /// Per-slice shard RNGs of the sharded LLC (`pc-cache`'s
    /// `SlicedCache` and its reference model). Legacy derivation.
    Slice,
    /// Per-capture page-load streams of the fingerprint grid
    /// (`pc-core`'s site × trial fan-out). Legacy derivation.
    Capture,
    /// Per-tenant seeds of the fleet driver (`pc-bench`'s
    /// `repro fleet`): one stream per tenant index.
    Tenant,
    /// Independent repetitions of one experiment (the `table1`-style
    /// "same setup, `runs` times" fan-outs).
    Repetition,
    /// Per-rx-queue driver streams of the multi-queue NIC model
    /// (`pc-core`'s RSS test bed): one allocator/driver RNG stream per
    /// queue index. Queue 0 does **not** go through this domain — it
    /// keeps the bed's legacy base-seed streams so a single-queue bed
    /// is byte-identical to the pre-RSS model.
    Queue,
}

impl SeedDomain {
    /// Domain tag folded into the base seed, or `None` for the legacy
    /// domains whose streams are pinned to plain `mix_seed`.
    fn tag(self) -> Option<u64> {
        match self {
            SeedDomain::Slice | SeedDomain::Capture => None,
            SeedDomain::Tenant => Some(0xF1EE_7000),
            SeedDomain::Repetition => Some(0x2E9E_A700),
            SeedDomain::Queue => Some(0xA55E_0E00),
        }
    }
}

/// Derives the RNG seed for item `index` of a fan-out in `domain` —
/// the one documented per-item seed-derivation helper. Call sites that
/// need several sub-streams per item derive the item seed here once
/// and split it locally with [`mix_seed`].
///
/// Like [`mix_seed`] this is a pure function of its inputs: an item's
/// stream depends only on `(base, domain, index)`, never on the
/// schedule that ran it, so sequential and parallel executions draw
/// identical streams by construction. A unit test pins that distinct
/// tenants never collide for base seeds `0..1024`.
pub fn stream_seed(base: u64, domain: SeedDomain, index: u64) -> u64 {
    match domain.tag() {
        None => mix_seed(base, index),
        Some(tag) => mix_seed(mix_seed(base, tag), index),
    }
}

/// Maps `f` over `items` on up to [`max_threads`] worker threads,
/// returning results in input order.
///
/// ```
/// let items: Vec<i64> = (0..64).collect();
/// let squares = pc_par::parallel_map(items, |x| x * x);
/// assert_eq!(squares, (0..64).map(|x| x * x).collect::<Vec<i64>>());
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_threads(items, max_threads(), f)
}

/// [`parallel_map`] with an explicit worker bound, for callers (tests,
/// the sharded-cache dispatcher) that must pin the thread count rather
/// than read the environment.
///
/// Work is distributed round-robin (worker `w` takes items `w`,
/// `w + n`, ...), which keeps the longest-running repetitions of a
/// typical homogeneous batch spread across workers. Panics in `f`
/// propagate to the caller.
pub fn parallel_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let f_ref = &f;
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f_ref(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel_map worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

/// [`parallel_map_threads`] with per-worker scratch: each worker calls
/// `init()` once and threads the resulting value through every item it
/// runs (`f(&mut scratch, item)`); results return in input order.
///
/// The scratch is an **allocation cache, not state**: `f` must return
/// the same value for an item whatever scratch history preceded it
/// (reset whatever you reuse), because which items share a scratch
/// depends on the round-robin bucketing and so on `threads`. The fleet
/// driver is the motivating caller — one reusable `TestBed` per worker
/// across thousands of small tenants — and its byte-identical-across-
/// thread-counts golden pins the contract end to end.
///
/// With `threads <= 1` (or a single item) everything runs inline on
/// one scratch. Panics in `f` propagate to the caller.
pub fn parallel_map_scratch_threads<T, R, S, I, F>(
    items: Vec<T>,
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let mut scratch = init();
        return items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
    }
    let n = items.len();
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let f_ref = &f;
    let init_ref = &init;
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let mut scratch = init_ref();
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f_ref(&mut scratch, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel_map_scratch worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

/// Range-partitioned fan-out over two zipped mutable slices.
///
/// `a` and `b` (which must have equal length) are cut into the *same*
/// contiguous chunks — at most `threads` of them — and
/// `f(offset, a_chunk, b_chunk)` runs once per chunk pair, each on its
/// own scoped worker thread; `offset` is the global index of the
/// chunk's first element. Results return in range order.
///
/// This is the "partition by index range" counterpart to the
/// round-robin [`parallel_map_threads`]: use it when workers need
/// **mutable** access to their cut of shared state (the sharded LLC
/// dispatcher pairs each worker's shard group with that group's op
/// bins). Because the ranges are disjoint, the borrows are too — no
/// locks, and determinism is inherited from `f` (each chunk pair sees
/// exactly the state and inputs it would see sequentially).
///
/// With `threads <= 1` (or a single-element input) everything runs
/// inline on the caller's thread, producing byte-identical results.
/// Panics in `f` propagate to the caller.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length.
pub fn parallel_zip_chunks_threads<A, B, R, F>(
    a: &mut [A],
    b: &mut [B],
    threads: usize,
    f: F,
) -> Vec<R>
where
    A: Send,
    B: Send,
    R: Send,
    F: Fn(usize, &mut [A], &mut [B]) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must have equal length");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads.clamp(1, n));
    if threads <= 1 || n <= 1 {
        return a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(g, (ca, cb))| f(g * chunk, ca, cb))
            .collect();
    }
    let f_ref = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(g, (ca, cb))| scope.spawn(move || f_ref(g * chunk, ca, cb)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_zip_chunks worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i64>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let work = |x: u64| x.wrapping_mul(x) ^ (x >> 3);
        let items: Vec<u64> = (0..57).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| work(x)).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map_threads(items.clone(), threads, work),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matches_sequential_for_seeded_work() {
        // The property the experiments rely on: parallel order ==
        // sequential order for seed-dependent work.
        let work = |seed: u64| {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| rng.gen_range(0..1_000_000u64))
                .sum::<u64>()
        };
        let seeds: Vec<u64> = (0..16).collect();
        let sequential: Vec<u64> = seeds.iter().map(|&s| work(s)).collect();
        let parallel = parallel_map(seeds, work);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn zip_chunks_mutations_are_thread_invariant() {
        // The chunking (and so the per-chunk results) depends on the
        // worker count; the *state mutations* must not.
        let run = |threads: usize| {
            let mut a: Vec<u64> = (0..23).collect();
            let mut b: Vec<u64> = (100..123).collect();
            let offsets: Vec<usize> =
                parallel_zip_chunks_threads(&mut a, &mut b, threads, |offset, ca, cb| {
                    for (i, (x, y)) in ca.iter_mut().zip(cb.iter()).enumerate() {
                        *x += *y * (offset + i) as u64;
                    }
                    offset
                });
            (a, offsets)
        };
        let (sequential, _) = run(1);
        for threads in [2usize, 3, 8, 64] {
            let (a, offsets) = run(threads);
            assert_eq!(a, sequential, "threads={threads}");
            // Offsets really are the global range starts, in order.
            assert_eq!(offsets[0], 0);
            assert!(offsets.windows(2).all(|w| w[0] < w[1]), "threads={threads}");
        }
    }

    #[test]
    fn zip_chunks_handles_empty_input() {
        let out: Vec<()> =
            parallel_zip_chunks_threads::<u8, u8, _, _>(&mut [], &mut [], 4, |_, _, _| ());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn zip_chunks_rejects_mismatched_lengths() {
        parallel_zip_chunks_threads(&mut [1u8, 2], &mut [1u8], 2, |_, _, _| ());
    }

    #[test]
    fn mix_seed_separates_salts_and_seeds() {
        let a = mix_seed(2020, 0);
        let b = mix_seed(2020, 1);
        let c = mix_seed(2021, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(2020, 0), "pure function of (seed, salt)");
    }

    #[test]
    fn legacy_domains_preserve_their_pinned_streams() {
        // Slice and Capture predate SeedDomain; golden outputs across
        // the workspace pin their streams to plain mix_seed. Changing
        // this mapping silently reseeds every shard RNG.
        for base in [0u64, 1, 2020, u64::MAX] {
            for index in [0u64, 1, 7, 1 << 40] {
                assert_eq!(
                    stream_seed(base, SeedDomain::Slice, index),
                    mix_seed(base, index)
                );
                assert_eq!(
                    stream_seed(base, SeedDomain::Capture, index),
                    mix_seed(base, index)
                );
            }
        }
    }

    #[test]
    fn tenant_seeds_never_collide_for_small_bases() {
        // The fleet derives per-tenant seeds from small consecutive
        // base seeds (CLI `--seed`); distinct (base, tenant) pairs must
        // give distinct seeds across the whole 0..1024 × 0..1024 grid.
        let mut seen = std::collections::HashSet::with_capacity(1024 * 1024);
        for base in 0..1024u64 {
            for tenant in 0..1024u64 {
                assert!(
                    seen.insert(stream_seed(base, SeedDomain::Tenant, tenant)),
                    "collision at base={base} tenant={tenant}"
                );
            }
        }
    }

    #[test]
    fn domains_separate_equal_indices() {
        // Two fan-outs at the same (base, index) must not share a
        // stream just because their indices coincide.
        let base = 2020;
        let slice = stream_seed(base, SeedDomain::Slice, 3);
        let tenant = stream_seed(base, SeedDomain::Tenant, 3);
        let rep = stream_seed(base, SeedDomain::Repetition, 3);
        let queue = stream_seed(base, SeedDomain::Queue, 3);
        assert_ne!(slice, tenant);
        assert_ne!(slice, rep);
        assert_ne!(tenant, rep);
        assert_ne!(queue, slice);
        assert_ne!(queue, tenant);
        assert_ne!(queue, rep);
    }

    #[test]
    fn scratch_map_matches_sequential_for_any_thread_count() {
        // The scratch is an allocation cache: as long as `f` resets it,
        // results must be identical for every worker count.
        let work = |scratch: &mut Vec<u64>, seed: u64| {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            scratch.clear(); // reset: contract of the scratch map
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                scratch.push(rng.gen_range(0..1_000u64));
            }
            scratch.iter().sum::<u64>()
        };
        let items: Vec<u64> = (0..37).collect();
        let sequential: Vec<u64> = items.iter().map(|&s| work(&mut Vec::new(), s)).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map_scratch_threads(items.clone(), threads, Vec::new, work),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scratch_map_builds_one_scratch_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map_scratch_threads(
            items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |_, x| x,
        );
        assert_eq!(out.len(), 40);
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "scratch must be reused across a worker's items, not rebuilt per item"
        );
    }
}
