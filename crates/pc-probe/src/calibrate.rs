//! Hit/miss threshold calibration.
//!
//! Before attacking, the spy measures what a hit and a miss look like on
//! this machine: first touch of a cold line (miss) vs an immediate
//! re-touch (hit). The decision threshold is the midpoint. This mirrors
//! Mastik's calibration loop.

use crate::pool::AddressPool;
use pc_cache::{Cycles, Hierarchy};

/// Measures the hit/miss latency threshold using `samples` cold lines
/// from `pool`.
///
/// # Panics
///
/// Panics if `samples` is zero or larger than the pool.
pub fn calibrate_threshold(h: &mut Hierarchy, pool: &AddressPool, samples: usize) -> Cycles {
    assert!(samples > 0, "need at least one calibration sample");
    assert!(samples <= pool.len(), "pool too small for calibration");
    let mut miss_total = 0u64;
    let mut hit_total = 0u64;
    for &page in &pool.pages()[..samples] {
        miss_total += h.cpu_read(page); // cold: miss
        hit_total += h.cpu_read(page); // warm: hit
    }
    let avg_miss = miss_total / samples as u64;
    let avg_hit = hit_total / samples as u64;
    (avg_hit + avg_miss) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_cache::{CacheGeometry, DdioMode};

    #[test]
    fn threshold_separates_hit_from_miss() {
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(1, 64);
        let thr = calibrate_threshold(&mut h, &pool, 32);
        let lat = h.latencies();
        assert!(thr > lat.llc_hit);
        assert!(thr <= lat.dram);
        // And it matches what the hierarchy itself would classify.
        assert_eq!(thr, lat.miss_threshold());
    }

    #[test]
    #[should_panic(expected = "pool too small")]
    fn oversampling_panics() {
        let mut h = Hierarchy::new(CacheGeometry::tiny(), DdioMode::enabled());
        let pool = AddressPool::allocate(1, 4);
        calibrate_threshold(&mut h, &pool, 5);
    }
}
