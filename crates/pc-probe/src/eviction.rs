//! Eviction-set construction.
//!
//! The spy can compute the set-index bits of its own addresses, but the
//! slice hash is opaque (paper §II-D). To monitor one concrete cache set
//! it therefore needs, per set index, one *eviction set per slice*:
//! `ways` of its own addresses that all collide in that slice-set.
//! [`build_eviction_sets_for_index`] discovers them with timing-based
//! group testing, the standard technique from Liu et al. that Mastik
//! implements.

use crate::pool::AddressPool;
use pc_cache::{CacheOp, Cycles, Hierarchy, PhysAddr, SliceSet, SlicedCache};

/// `ways` attacker addresses that all map to one (slice, set) pair —
/// accessing all of them replaces the set's entire contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictionSet {
    addrs: Vec<PhysAddr>,
}

impl EvictionSet {
    /// Wraps a list of conflicting addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn new(addrs: Vec<PhysAddr>) -> Self {
        assert!(!addrs.is_empty(), "eviction set must contain addresses");
        EvictionSet { addrs }
    }

    /// The conflicting addresses.
    pub fn addresses(&self) -> &[PhysAddr] {
        &self.addrs
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` if empty (constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// Does accessing `set` evict `victim`? The attacker's basic timing test.
///
/// Only the final victim read needs a latency; the candidate walk in
/// between is a batch replay (byte-identical to per-address reads).
fn evicts(h: &mut Hierarchy, victim: PhysAddr, set: &[PhysAddr], threshold: Cycles) -> bool {
    h.cpu_read(victim);
    h.run_trace(set.iter().map(|&a| CacheOp::read(a)));
    h.cpu_read(victim) >= threshold
}

/// Builds one eviction set per slice for `set_index`, purely by timing.
///
/// Returns up to `max_groups` sets (pass the slice count; fewer are
/// returned when the pool doesn't cover every slice with at least
/// `ways + 1` addresses).
///
/// The algorithm: pick a pivot, confirm the rest of the candidates evict
/// it, then shrink that candidate set by group testing (drop a chunk,
/// keep the reduction if the pivot is still evicted) until `ways`
/// addresses remain — a minimal eviction set, necessarily all in the
/// pivot's slice. Finally peel every remaining candidate that the minimal
/// set evicts (same slice) and repeat for the next slice.
///
/// # Panics
///
/// Panics if `ways` is zero.
pub fn build_eviction_sets_for_index(
    h: &mut Hierarchy,
    pool: &AddressPool,
    set_index: usize,
    ways: usize,
    max_groups: usize,
    threshold: Cycles,
) -> Vec<EvictionSet> {
    assert!(ways > 0, "ways must be non-zero");
    let geom = h.llc().geometry();
    let mut remaining = pool.addresses_with_index(&geom, set_index);
    let mut groups = Vec::new();

    while groups.len() < max_groups && remaining.len() > ways {
        let pivot = remaining[0];
        let mut candidate: Vec<PhysAddr> = remaining[1..].to_vec();
        if !evicts(h, pivot, &candidate, threshold) {
            // Not enough same-slice candidates left for this pivot; try
            // the next pivot, dropping this one.
            remaining.remove(0);
            continue;
        }
        // Shrink to a minimal eviction set: fast chunked reduction first,
        // then one-at-a-time when chunking stalls (a stalled chunk pass
        // only means every chunk mixes essential and removable addresses,
        // not that the set is minimal).
        while candidate.len() > ways {
            let chunks = ways + 1;
            let chunk_size = candidate.len().div_ceil(chunks);
            let mut reduced = false;
            if chunk_size > 1 {
                for c in 0..chunks {
                    let lo = c * chunk_size;
                    if lo >= candidate.len() {
                        break;
                    }
                    let hi = (lo + chunk_size).min(candidate.len());
                    let mut test = Vec::with_capacity(candidate.len() - (hi - lo));
                    test.extend_from_slice(&candidate[..lo]);
                    test.extend_from_slice(&candidate[hi..]);
                    if test.len() >= ways && evicts(h, pivot, &test, threshold) {
                        candidate = test;
                        reduced = true;
                        break;
                    }
                }
            }
            if !reduced {
                // Single-address fallback: any non-essential address (one
                // outside the pivot's slice, or a surplus in-slice line)
                // can be removed without losing the eviction property.
                for i in 0..candidate.len() {
                    let mut test = candidate.clone();
                    test.remove(i);
                    if evicts(h, pivot, &test, threshold) {
                        candidate = test;
                        reduced = true;
                        break;
                    }
                }
            }
            if !reduced {
                break; // genuinely minimal (or measurement noise); keep it
            }
        }
        // Peel everything the minimal set conflicts with (same slice).
        remaining = remaining
            .into_iter()
            .filter(|a| *a != pivot && !candidate.contains(a))
            .filter(|a| !evicts(h, *a, &candidate, threshold))
            .collect();
        groups.push(EvictionSet::new(candidate));
    }
    groups
}

/// Ground-truth eviction-set construction for experiment *setup*.
///
/// Uses the cache's slice hash directly, so it is **instrumentation, not
/// attack code** — the equivalent of the paper's one-time offline phase
/// being precomputed. Returns one set per requested target, in order.
///
/// # Panics
///
/// Panics if the pool cannot supply `ways` addresses for some target
/// (allocate a larger pool).
pub fn oracle_eviction_sets(
    llc: &SlicedCache,
    pool: &AddressPool,
    targets: &[SliceSet],
) -> Vec<EvictionSet> {
    let geom = llc.geometry();
    let ways = geom.ways();
    targets
        .iter()
        .map(|t| {
            let addrs: Vec<PhysAddr> = pool
                .addresses_with_index(&geom, t.set)
                .into_iter()
                .filter(|a| llc.slice_hash().slice_of(*a) == t.slice)
                .take(ways)
                .collect();
            assert!(
                addrs.len() == ways,
                "pool supplies only {}/{} addresses for {t}; allocate a larger pool",
                addrs.len(),
                ways
            );
            EvictionSet::new(addrs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_cache::{CacheGeometry, DdioMode};

    #[test]
    fn oracle_sets_are_exactly_one_slice_set() {
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(2, 8192);
        let targets = [
            SliceSet::new(0, 0),
            SliceSet::new(5, 64),
            SliceSet::new(7, 1984),
        ];
        let sets = oracle_eviction_sets(h.llc(), &pool, &targets);
        assert_eq!(sets.len(), 3);
        for (set, t) in sets.iter().zip(&targets) {
            assert_eq!(set.len(), 20);
            for &a in set.addresses() {
                assert_eq!(h.llc().locate(a), *t);
            }
        }
    }

    #[test]
    fn timing_based_construction_finds_all_slices() {
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(3, 8192);
        let thr = h.latencies().miss_threshold();
        let ways = h.llc().geometry().ways();
        let groups = build_eviction_sets_for_index(&mut h, &pool, 0, ways, 8, thr);
        assert!(
            groups.len() >= 6,
            "expected most of the 8 slices, found {}",
            groups.len()
        );
        // Verify against ground truth: each group is homogeneous.
        let mut seen_slices = Vec::new();
        for g in &groups {
            let ss = h.llc().locate(g.addresses()[0]);
            assert_eq!(ss.set, 0);
            for &a in g.addresses() {
                assert_eq!(h.llc().locate(a), ss, "mixed-slice eviction set");
            }
            assert!(!seen_slices.contains(&ss.slice), "duplicate slice group");
            seen_slices.push(ss.slice);
            assert!(g.len() >= ways, "group smaller than associativity");
            assert!(g.len() <= ways + 2, "group not minimal: {}", g.len());
        }
    }

    #[test]
    fn built_sets_actually_evict() {
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(4, 8192);
        let thr = h.latencies().miss_threshold();
        let ways = h.llc().geometry().ways();
        let groups = build_eviction_sets_for_index(&mut h, &pool, 64, ways, 3, thr);
        for g in &groups {
            // A fresh victim in the same slice-set must be evicted by the
            // group.
            let ss = h.llc().locate(g.addresses()[0]);
            let victim = pool
                .addresses_with_index(&h.llc().geometry(), 64)
                .into_iter()
                .find(|a| h.llc().locate(*a) == ss && !g.addresses().contains(a))
                .expect("pool has spare addresses in this slice-set");
            assert!(evicts(&mut h, victim, g.addresses(), thr));
        }
    }

    #[test]
    #[should_panic(expected = "larger pool")]
    fn oracle_panics_on_small_pool() {
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(2, 64); // far too small
        let _ = oracle_eviction_sets(h.llc(), &pool, &[SliceSet::new(0, 0)]);
    }
}
