//! # pc-probe — the attacker's micro-architectural toolkit
//!
//! The paper drives its attack with the Mastik side-channel toolkit; this
//! crate is the equivalent for the simulated hierarchy. Nothing in here
//! uses ground truth: the attacker only ever issues loads through
//! [`pc_cache::Hierarchy::cpu_read`] and looks at latencies, exactly as
//! `rdtscp`-timed pointer chasing does on hardware.
//!
//! * [`AddressPool`] — the spy's own page-aligned memory (it knows the
//!   set-index bits of its addresses, as with hugepages on real systems,
//!   but *not* the slice-hash outcome).
//! * [`calibrate_threshold`] — measures the hit/miss latency boundary.
//! * [`build_eviction_sets_for_index`] — timing-based group-testing
//!   construction of one eviction set per slice for a given set index.
//! * [`EvictionSet`] / [`PrimeProbe`] — the PRIME+PROBE primitive.
//! * [`Monitor`] / [`SampleMatrix`] — multi-set sampling loops producing
//!   the activity matrices behind Figures 7 and 8.
//! * [`oracle_eviction_sets`] — ground-truth shortcut for experiment
//!   *setup* (clearly marked; used where the paper also relies on a
//!   one-time offline phase, so that paper-scale experiments run in
//!   seconds — the timing-based builder is exercised by its own tests and
//!   benches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod eviction;
mod monitor;
mod pool;
mod prime_probe;

pub use calibrate::calibrate_threshold;
pub use eviction::{build_eviction_sets_for_index, oracle_eviction_sets, EvictionSet};
pub use monitor::{Monitor, MonitorTarget, RowBits, SampleMatrix};
pub use pool::AddressPool;
pub use prime_probe::{PrimeProbe, ProbeResult};
