//! Multi-set monitoring: the sampling loops behind Figures 7 and 8.

use crate::eviction::EvictionSet;
use crate::prime_probe::PrimeProbe;
use pc_cache::{Cycles, Hierarchy};

/// One monitored cache set with the spy's label for it.
///
/// Labels are whatever numbering the attacker chooses — for the packet
/// chasing attack, "page-aligned set number 0..255" or "block k of buffer
/// page".
#[derive(Clone, Debug)]
pub struct MonitorTarget {
    /// The spy's name for this set.
    pub label: usize,
    /// The PRIME+PROBE instance bound to it.
    pub probe: PrimeProbe,
}

impl MonitorTarget {
    /// Creates a labelled target.
    pub fn new(label: usize, set: EvictionSet, threshold: Cycles) -> Self {
        MonitorTarget { label, probe: PrimeProbe::new(set, threshold) }
    }
}

/// A boolean activity matrix: `rows[sample][target]` is `true` when the
/// probe of that target observed at least one miss in that interval —
/// exactly the white dots of the paper's Figure 7.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SampleMatrix {
    labels: Vec<usize>,
    rows: Vec<Vec<bool>>,
}

impl SampleMatrix {
    /// An empty matrix over `labels`.
    pub fn new(labels: Vec<usize>) -> Self {
        SampleMatrix { labels, rows: Vec::new() }
    }

    /// The target labels (column order).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// All sample rows.
    pub fn rows(&self) -> &[Vec<bool>] {
        &self.rows
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a sample row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the label count.
    pub fn push(&mut self, row: Vec<bool>) {
        assert_eq!(row.len(), self.labels.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Total activity events per target, in label order.
    pub fn activity_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.labels.len()];
        for row in &self.rows {
            for (c, &hit) in counts.iter_mut().zip(row) {
                *c += usize::from(hit);
            }
        }
        counts
    }

    /// Fraction of samples with activity, per target.
    pub fn activity_fractions(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        self.activity_counts().into_iter().map(|c| c as f64 / n).collect()
    }
}

/// Samples a list of targets at a fixed probe rate.
///
/// Each `sample` call probes every target once (which re-primes them) —
/// one row of the activity matrix. The caller interleaves packet
/// deliveries between samples; see the test-bed in `pc-core`.
#[derive(Clone, Debug)]
pub struct Monitor {
    targets: Vec<MonitorTarget>,
}

impl Monitor {
    /// Creates a monitor over `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<MonitorTarget>) -> Self {
        assert!(!targets.is_empty(), "monitor needs targets");
        Monitor { targets }
    }

    /// The monitored targets.
    pub fn targets(&self) -> &[MonitorTarget] {
        &self.targets
    }

    /// Labels in column order.
    pub fn labels(&self) -> Vec<usize> {
        self.targets.iter().map(|t| t.label).collect()
    }

    /// Primes every target (attack setup).
    pub fn prime_all(&self, h: &mut Hierarchy) {
        for t in &self.targets {
            t.probe.prime(h);
        }
    }

    /// Probes every target once, returning per-target activity.
    pub fn sample(&self, h: &mut Hierarchy) -> Vec<bool> {
        self.targets.iter().map(|t| t.probe.probe(h).activity()).collect()
    }

    /// Probes every target once, returning per-target miss counts.
    pub fn sample_misses(&self, h: &mut Hierarchy) -> Vec<u32> {
        self.targets.iter().map(|t| t.probe.probe(h).misses).collect()
    }

    /// An empty matrix shaped for this monitor.
    pub fn matrix(&self) -> SampleMatrix {
        SampleMatrix::new(self.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::oracle_eviction_sets;
    use crate::pool::AddressPool;
    use pc_cache::{CacheGeometry, DdioMode, PhysAddr, SliceSet};

    fn setup(n: usize) -> (Hierarchy, Monitor, Vec<PhysAddr>) {
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(6, 8192);
        // Monitor n distinct page-aligned sets; victims are NIC-side pages
        // that land in them.
        let mut victims = Vec::new();
        let mut targets = Vec::new();
        let mut label = 0usize;
        for page in 0..2000u64 {
            if targets.len() >= n {
                break;
            }
            let v = PhysAddr::new(page * 4096);
            let ss: SliceSet = h.llc().locate(v);
            if victims.iter().any(|&p| h.llc().locate(p) == ss) {
                continue;
            }
            let set = oracle_eviction_sets(h.llc(), &pool, &[ss]).remove(0);
            targets.push(MonitorTarget::new(label, set, h.latencies().miss_threshold()));
            victims.push(v);
            label += 1;
        }
        (h, Monitor::new(targets), victims)
    }

    #[test]
    fn idle_monitor_sees_nothing() {
        let (mut h, m, _) = setup(4);
        m.prime_all(&mut h);
        let row = m.sample(&mut h);
        assert_eq!(row, vec![false; 4]);
    }

    #[test]
    fn activity_lands_on_the_right_column() {
        let (mut h, m, victims) = setup(4);
        m.prime_all(&mut h);
        let _ = m.sample(&mut h);
        h.io_write(victims[2]);
        let row = m.sample(&mut h);
        assert_eq!(row, vec![false, false, true, false]);
    }

    #[test]
    fn matrix_counts_activity() {
        let (mut h, m, victims) = setup(3);
        m.prime_all(&mut h);
        let mut mat = m.matrix();
        for i in 0..6 {
            if i % 2 == 0 {
                h.io_write(victims[1]);
            }
            mat.push(m.sample(&mut h));
        }
        assert_eq!(mat.len(), 6);
        let counts = mat.activity_counts();
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 3);
        assert_eq!(counts[2], 0);
        let fracs = mat.activity_fractions();
        assert!((fracs[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn matrix_rejects_ragged_rows() {
        let mut m = SampleMatrix::new(vec![0, 1]);
        m.push(vec![true]);
    }
}
