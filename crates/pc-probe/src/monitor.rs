//! Multi-set monitoring: the sampling loops behind Figures 7 and 8.

use crate::eviction::EvictionSet;
use crate::prime_probe::PrimeProbe;
use pc_cache::{Cycles, Hierarchy};

/// One monitored cache set with the spy's label for it.
///
/// Labels are whatever numbering the attacker chooses — for the packet
/// chasing attack, "page-aligned set number 0..255" or "block k of buffer
/// page".
#[derive(Clone, Debug)]
pub struct MonitorTarget {
    /// The spy's name for this set.
    pub label: usize,
    /// The PRIME+PROBE instance bound to it.
    pub probe: PrimeProbe,
}

impl MonitorTarget {
    /// Creates a labelled target.
    pub fn new(label: usize, set: EvictionSet, threshold: Cycles) -> Self {
        MonitorTarget {
            label,
            probe: PrimeProbe::new(set, threshold),
        }
    }
}

/// A boolean activity matrix: sample × target, `true` when the probe of
/// that target observed at least one miss in that interval — exactly the
/// white dots of the paper's Figure 7.
///
/// Rows are stored as packed `u64` bitsets (one bit per monitored
/// target) instead of `Vec<Vec<bool>>`: a 256-target row is 4 words, the
/// whole matrix one contiguous allocation, and per-target totals are
/// popcount loops. Activity is sparse (a handful of sets light up per
/// sample), so consumers iterate set bits via [`RowBits::iter_active`]
/// rather than scanning every column.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SampleMatrix {
    labels: Vec<usize>,
    /// `width` words per row, rows back to back.
    words: Vec<u64>,
    width: usize,
    samples: usize,
}

/// One packed row of a [`SampleMatrix`].
#[derive(Copy, Clone, Debug)]
pub struct RowBits<'a> {
    words: &'a [u64],
    len: usize,
}

impl RowBits<'_> {
    /// Number of columns (targets).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the row has zero columns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether column `i` saw activity.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "column out of range");
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Indices of the active columns, ascending.
    pub fn iter_active(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&m| {
                let m = m & (m - 1);
                (m != 0).then_some(m)
            })
            .map(move |m| wi * 64 + m.trailing_zeros() as usize)
        })
    }

    /// Number of active columns (popcount).
    pub fn count_active(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl SampleMatrix {
    /// An empty matrix over `labels`.
    pub fn new(labels: Vec<usize>) -> Self {
        let width = labels.len().div_ceil(64);
        SampleMatrix {
            labels,
            words: Vec::new(),
            width,
            samples: 0,
        }
    }

    /// The target labels (column order).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The sample rows, as packed bitsets.
    pub fn rows(&self) -> impl Iterator<Item = RowBits<'_>> {
        let len = self.labels.len();
        self.words
            .chunks_exact(self.width.max(1))
            .take(self.samples)
            .map(move |words| RowBits { words, len })
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// `true` when no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Appends a sample row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the label count.
    pub fn push(&mut self, row: Vec<bool>) {
        self.push_bools(&row);
    }

    /// Appends a sample row from a bool slice (no ownership needed).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the label count.
    pub fn push_bools(&mut self, row: &[bool]) {
        assert_eq!(row.len(), self.labels.len(), "row width mismatch");
        let base = self.words.len();
        self.words.resize(base + self.width.max(1), 0);
        for (i, &hit) in row.iter().enumerate() {
            if hit {
                self.words[base + i / 64] |= 1 << (i % 64);
            }
        }
        self.samples += 1;
    }

    /// Total activity events per target, in label order.
    pub fn activity_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.labels.len()];
        for row in self.rows() {
            for col in row.iter_active() {
                counts[col] += 1;
            }
        }
        counts
    }

    /// Fraction of samples with activity, per target.
    pub fn activity_fractions(&self) -> Vec<f64> {
        let n = self.samples.max(1) as f64;
        self.activity_counts()
            .into_iter()
            .map(|c| c as f64 / n)
            .collect()
    }
}

/// Samples a list of targets at a fixed probe rate.
///
/// Each `sample` call probes every target once (which re-primes them) —
/// one row of the activity matrix. The caller interleaves packet
/// deliveries between samples; see the test-bed in `pc-core`.
///
/// A probe epoch observes a synchronized machine: `TestBed::advance_to`
/// returns with every pending frame op applied and every frame's clock
/// reconstructed, so the probe never sees a half-replayed window —
/// whatever engine delivers the frames. Since the bed's windowed
/// engine fuses across gaps and reconstructs clocks retroactively,
/// epochs cost only that synchronization, not a per-gap flush cascade.
/// The monitor plays the same per-segment trick *inside* an epoch:
/// when every target's threshold separates hit from miss in the
/// latency model (every calibrated threshold does), one
/// [`Monitor::sample`] concatenates all targets' probe walks into a
/// single segmented batch — one `pc_cache::TraceSummary` per target,
/// classified from the aggregates (`misses = accesses − hits`),
/// byte-identical to probing target by target but sharded slice-
/// parallel like any large batch. An ambiguous threshold falls back
/// to per-target probing.
#[derive(Clone, Debug)]
pub struct Monitor {
    targets: Vec<MonitorTarget>,
}

impl Monitor {
    /// Creates a monitor over `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<MonitorTarget>) -> Self {
        assert!(!targets.is_empty(), "monitor needs targets");
        Monitor { targets }
    }

    /// The monitored targets.
    pub fn targets(&self) -> &[MonitorTarget] {
        &self.targets
    }

    /// Labels in column order.
    pub fn labels(&self) -> Vec<usize> {
        self.targets.iter().map(|t| t.label).collect()
    }

    /// Primes every target (attack setup) as **one** fused op batch:
    /// the targets' walks concatenate in target order, so the access
    /// stream is identical to priming one target at a time, but a
    /// monitor over hundreds of sets (Figures 7/8 prime 256) clears the
    /// sharded-dispatch threshold and replays slice-parallel.
    pub fn prime_all(&self, h: &mut Hierarchy) {
        h.run_trace(self.targets.iter().flat_map(|t| t.probe.prime_ops()));
    }

    /// Probes every target once, returning per-target activity.
    ///
    /// Fused when every target's threshold separates the latency model
    /// (see the type docs): one segmented batch, one subtotal per
    /// target, byte-identical to per-target probing.
    pub fn sample(&self, h: &mut Hierarchy) -> Vec<bool> {
        self.probe_all(h).into_iter().map(|m| m > 0).collect()
    }

    /// Probes every target once, returning per-target miss counts.
    /// Fused exactly like [`Monitor::sample`].
    pub fn sample_misses(&self, h: &mut Hierarchy) -> Vec<u32> {
        self.probe_all(h)
    }

    /// One probe pass over every target, in target order. When all
    /// targets are batch-separable, the targets' reverse probe walks
    /// concatenate into **one** trace with a segment start per target
    /// ([`Hierarchy::run_trace_segmented`]); each target's misses are
    /// recovered from its subtotal as `accesses − hits`. The access
    /// stream, clock and statistics are identical to probing one
    /// target at a time — the fusion only lets a many-target monitor
    /// (Figures 7/8 sample 256 sets) clear the sharded-dispatch
    /// threshold instead of replaying hundreds of tiny batches.
    fn probe_all(&self, h: &mut Hierarchy) -> Vec<u32> {
        let lat = h.latencies();
        if !self.targets.iter().all(|t| t.probe.batch_separable(lat)) {
            return self
                .targets
                .iter()
                .map(|t| t.probe.probe(h).misses)
                .collect();
        }
        let mut ops: Vec<pc_cache::CacheOp> = Vec::new();
        let mut starts = Vec::with_capacity(self.targets.len());
        for t in &self.targets {
            starts.push(ops.len());
            ops.extend(t.probe.probe_ops());
        }
        let mut seg = Vec::new();
        h.run_trace_segmented(&ops, &starts, &mut seg);
        seg.iter()
            .enumerate()
            .map(|(k, s)| {
                let mut misses = (s.accesses - s.hits) as u32;
                // Fault site `cross-epoch-misclassify`: the fused
                // sample inverts one keyed target's classification
                // (misses become hits and vice versa) — the aggregate
                // is consistent, only the recovered per-target signal
                // is wrong, which is exactly what a differential
                // monitor check must catch.
                if pc_cache::fault::fires_keyed(
                    pc_cache::fault::FaultSite::CrossEpochMisclassify,
                    k as u64,
                ) {
                    misses = s.accesses as u32 - misses;
                }
                misses
            })
            .collect()
    }

    /// An empty matrix shaped for this monitor.
    pub fn matrix(&self) -> SampleMatrix {
        SampleMatrix::new(self.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::oracle_eviction_sets;
    use crate::pool::AddressPool;
    use pc_cache::{CacheGeometry, DdioMode, PhysAddr, SliceSet};

    fn setup(n: usize) -> (Hierarchy, Monitor, Vec<PhysAddr>) {
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(6, 8192);
        // Monitor n distinct page-aligned sets; victims are NIC-side pages
        // that land in them.
        let mut victims = Vec::new();
        let mut targets = Vec::new();
        let mut label = 0usize;
        for page in 0..2000u64 {
            if targets.len() >= n {
                break;
            }
            let v = PhysAddr::new(page * 4096);
            let ss: SliceSet = h.llc().locate(v);
            if victims.iter().any(|&p| h.llc().locate(p) == ss) {
                continue;
            }
            let set = oracle_eviction_sets(h.llc(), &pool, &[ss]).remove(0);
            targets.push(MonitorTarget::new(
                label,
                set,
                h.latencies().miss_threshold(),
            ));
            victims.push(v);
            label += 1;
        }
        (h, Monitor::new(targets), victims)
    }

    #[test]
    fn idle_monitor_sees_nothing() {
        let (mut h, m, _) = setup(4);
        m.prime_all(&mut h);
        let row = m.sample(&mut h);
        assert_eq!(row, vec![false; 4]);
    }

    #[test]
    fn activity_lands_on_the_right_column() {
        let (mut h, m, victims) = setup(4);
        m.prime_all(&mut h);
        let _ = m.sample(&mut h);
        h.io_write(victims[2]);
        let row = m.sample(&mut h);
        assert_eq!(row, vec![false, false, true, false]);
    }

    #[test]
    fn matrix_counts_activity() {
        let (mut h, m, victims) = setup(3);
        m.prime_all(&mut h);
        let mut mat = m.matrix();
        for i in 0..6 {
            if i % 2 == 0 {
                h.io_write(victims[1]);
            }
            mat.push(m.sample(&mut h));
        }
        assert_eq!(mat.len(), 6);
        let counts = mat.activity_counts();
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 3);
        assert_eq!(counts[2], 0);
        let fracs = mat.activity_fractions();
        assert!((fracs[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn matrix_rejects_ragged_rows() {
        let mut m = SampleMatrix::new(vec![0, 1]);
        m.push(vec![true]);
    }

    #[test]
    fn fused_sample_matches_per_target_probing() {
        // The fused segmented sample against a hand-driven per-target
        // walk on a cloned machine: same misses, same clock, same
        // cache statistics — fusion is pure scheduling.
        let (mut h, m, victims) = setup(6);
        m.prime_all(&mut h);
        let _ = m.sample(&mut h);
        h.io_write(victims[1]);
        h.io_write(victims[4]);
        let mut oracle = h.clone();
        let fused = m.sample_misses(&mut h);
        let split: Vec<u32> = m
            .targets()
            .iter()
            .map(|t| t.probe.probe(&mut oracle).misses)
            .collect();
        assert_eq!(fused, split);
        assert_eq!(h.now(), oracle.now());
        assert_eq!(h.llc().stats(), oracle.llc().stats());
        assert!(fused[1] > 0 && fused[4] > 0, "activity where written");
        assert_eq!(fused[0], 0);
    }
}
