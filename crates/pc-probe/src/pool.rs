//! The attacker's own memory: a pool of page-aligned physical pages.
//!
//! On real hardware the spy mmaps hugepages, which lets it compute the
//! full 11-bit set index of any address it owns while the slice hash
//! remains opaque. We model the same knowledge boundary: the pool exposes
//! addresses *grouped by set index* but nothing about slices.

use pc_cache::{CacheGeometry, PhysAddr, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A set of unique pages owned by the spy, disjoint by construction from
/// the NIC's buffer region (different physical ranges).
///
/// ```
/// use pc_cache::CacheGeometry;
/// use pc_probe::AddressPool;
/// let pool = AddressPool::allocate(1, 512);
/// let g = CacheGeometry::xeon_e5_2660();
/// // Every address the pool claims for set index 0 really has index 0.
/// for a in pool.addresses_with_index(&g, 0) {
///     assert_eq!(g.set_index(a), 0);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct AddressPool {
    pages: Vec<PhysAddr>,
}

/// First page number of the attacker's region (far above the NIC
/// allocator's default region to guarantee disjointness).
const ATTACKER_FIRST_PAGE: u64 = 1 << 23;
/// Size of the attacker's region in pages.
const ATTACKER_REGION_PAGES: u64 = 1 << 21;

impl AddressPool {
    /// Allocates `n_pages` unique pages.
    ///
    /// # Panics
    ///
    /// Panics if `n_pages` is zero.
    pub fn allocate(seed: u64, n_pages: usize) -> Self {
        assert!(n_pages > 0, "pool must contain pages");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seen = HashSet::with_capacity(n_pages);
        let mut pages = Vec::with_capacity(n_pages);
        while pages.len() < n_pages {
            let p = ATTACKER_FIRST_PAGE + rng.gen_range(0..ATTACKER_REGION_PAGES);
            if seen.insert(p) {
                pages.push(PhysAddr::new(p * PAGE_SIZE as u64));
            }
        }
        AddressPool { pages }
    }

    /// Number of pages owned.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` if the pool owns no pages (constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// All page base addresses.
    pub fn pages(&self) -> &[PhysAddr] {
        &self.pages
    }

    /// Every owned address whose set index equals `set_index`.
    ///
    /// For page-aligned set indices these are page bases; for other
    /// indices they are page bases plus the right line offset — the same
    /// trick the spy uses to monitor blocks 1..3 of the NIC buffers.
    pub fn addresses_with_index(&self, geom: &CacheGeometry, set_index: usize) -> Vec<PhysAddr> {
        assert!(set_index < geom.sets_per_slice(), "set index out of range");
        // A page covers 64 consecutive set indices starting at a multiple
        // of 64; address = page_base + in_page_line*64 matches set_index
        // iff the page's base index covers it.
        let in_page = (set_index % 64) as u64;
        self.pages
            .iter()
            .filter(|p| geom.set_index(**p) == set_index - (set_index % 64))
            .map(|p| p.add_blocks(in_page))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_pages_unique_and_aligned() {
        let pool = AddressPool::allocate(7, 1000);
        let mut seen = HashSet::new();
        for p in pool.pages() {
            assert!(p.is_page_aligned());
            assert!(seen.insert(p.raw()));
        }
        assert_eq!(pool.len(), 1000);
        assert!(!pool.is_empty());
    }

    #[test]
    fn index_filtering_is_correct() {
        let pool = AddressPool::allocate(7, 2000);
        let g = CacheGeometry::xeon_e5_2660();
        for idx in [0usize, 64, 65, 1984, 2047] {
            for a in pool.addresses_with_index(&g, idx) {
                assert_eq!(g.set_index(a), idx);
            }
        }
    }

    #[test]
    fn page_aligned_indices_get_about_one_in_32_pages() {
        // 2048 sets/slice, 32 page-aligned indices → a random page matches
        // a given page-aligned index with probability 1/32.
        let pool = AddressPool::allocate(3, 3200);
        let g = CacheGeometry::xeon_e5_2660();
        let n = pool.addresses_with_index(&g, 0).len();
        assert!(
            (50..150).contains(&n),
            "expected ~100 pages for index 0, got {n}"
        );
    }

    #[test]
    fn disjoint_from_nic_region() {
        let pool = AddressPool::allocate(3, 100);
        // NIC default region ends below page 2^18 + 2^20 < 2^23.
        for p in pool.pages() {
            assert!(p.page_number() >= ATTACKER_FIRST_PAGE);
        }
    }
}
