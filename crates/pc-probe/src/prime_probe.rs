//! The PRIME+PROBE primitive over one eviction set.

use crate::eviction::EvictionSet;
use pc_cache::{CacheOp, Cycles, Hierarchy};

/// Result of probing one eviction set.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct ProbeResult {
    /// Accesses classified as misses (≥ threshold).
    pub misses: u32,
    /// Total latency of the probe pass.
    pub total_latency: Cycles,
}

impl ProbeResult {
    /// `true` if any line of the primed set was evicted since the prime —
    /// i.e. the victim (or the NIC) touched this cache set.
    pub fn activity(&self) -> bool {
        self.misses > 0
    }
}

/// A PRIME+PROBE instance bound to one eviction set.
///
/// `prime` fills the target cache set with the spy's lines; `probe`
/// re-walks them, timing each access. Probing in reverse order re-primes
/// the set as a side effect (the classic zig-zag pattern), so steady-state
/// monitoring is just repeated `probe` calls.
#[derive(Clone, Debug)]
pub struct PrimeProbe {
    set: EvictionSet,
    threshold: Cycles,
}

impl PrimeProbe {
    /// Binds the primitive to `set`, classifying accesses at or above
    /// `threshold` cycles as misses (see
    /// [`crate::calibrate_threshold`]).
    pub fn new(set: EvictionSet, threshold: Cycles) -> Self {
        PrimeProbe { set, threshold }
    }

    /// The underlying eviction set.
    pub fn eviction_set(&self) -> &EvictionSet {
        &self.set
    }

    /// The priming walk as an op stream (forward order) — **the** walk
    /// definition, shared by [`PrimeProbe::prime`], fused multi-target
    /// primes (`Monitor::prime_all` concatenates every target's walk
    /// into one batch) and the probe's reverse pass, so traversal order
    /// lives in one place.
    pub fn prime_ops(&self) -> impl Iterator<Item = CacheOp> + '_ {
        self.set.addresses().iter().map(|&a| CacheOp::read(a))
    }

    /// The probing walk: the same lines in reverse (re-priming as it
    /// goes — the classic zig-zag). Crate-visible so the monitor's
    /// fused multi-target sample can concatenate many targets' walks
    /// into one segmented batch.
    pub(crate) fn probe_ops(&self) -> impl Iterator<Item = CacheOp> + '_ {
        self.set.addresses().iter().rev().map(|&a| CacheOp::read(a))
    }

    /// Whether the batch fast path can classify this instance's probe
    /// from aggregates alone under `lat`: the latency model separates
    /// hit from miss at the threshold (`llc_hit < threshold ≤ dram` —
    /// true for every calibrated threshold), so per-access timing
    /// recovers exactly as `misses = accesses − hits`. The single
    /// definition behind [`PrimeProbe::probe`]'s fast path and the
    /// monitor's fused sample.
    pub(crate) fn batch_separable(&self, lat: pc_cache::LatencyModel) -> bool {
        lat.llc_hit < self.threshold && lat.dram >= self.threshold
    }

    /// Fills the target set with the spy's lines.
    ///
    /// Primes don't need per-access latencies, so the walk goes through
    /// the batch trace API ([`Hierarchy::run_trace`]) — identical cache
    /// and clock behaviour to per-address `cpu_read`s, less call
    /// overhead.
    pub fn prime(&self, h: &mut Hierarchy) {
        h.run_trace(self.prime_ops());
    }

    /// Times a pass over the set (in reverse, re-priming as it goes).
    ///
    /// When the hierarchy's latency model separates hit from miss at
    /// this instance's threshold (`llc_hit < threshold ≤ dram` — true
    /// for every calibrated threshold), the pass is a batch replay:
    /// the per-access classification is recovered exactly from the
    /// aggregate (`misses = accesses − hits`), byte-identical to timing
    /// each access. A threshold that splits the model ambiguously falls
    /// back to the per-access oracle walk.
    pub fn probe(&self, h: &mut Hierarchy) -> ProbeResult {
        let lat = h.latencies();
        if self.batch_separable(lat) {
            let sum = h.run_trace(self.probe_ops());
            return ProbeResult {
                misses: (sum.accesses - sum.hits) as u32,
                total_latency: sum.cycles,
            };
        }
        let mut result = ProbeResult::default();
        for op in self.probe_ops() {
            let lat = h.cpu_read(op.addr);
            result.total_latency += lat;
            if lat >= self.threshold {
                result.misses += 1;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::oracle_eviction_sets;
    use crate::pool::AddressPool;
    use pc_cache::{CacheGeometry, DdioMode, PhysAddr, SliceSet};

    fn setup() -> (Hierarchy, PrimeProbe, PhysAddr) {
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(5, 12288);
        // A victim address the NIC would write: pick any page, then build
        // the eviction set for its (slice, set).
        let victim = PhysAddr::new(4096 * 999);
        let target = h.llc().locate(victim);
        let sets = oracle_eviction_sets(h.llc(), &pool, &[target]);
        let pp = PrimeProbe::new(
            sets.into_iter().next().expect("pool covers the set"),
            h.latencies().miss_threshold(),
        );
        (h, pp, victim)
    }

    #[test]
    fn quiet_set_shows_no_activity() {
        let (mut h, pp, _) = setup();
        pp.prime(&mut h);
        let r = pp.probe(&mut h);
        assert!(!r.activity(), "unexpected misses: {}", r.misses);
    }

    #[test]
    fn io_write_to_set_is_detected() {
        let (mut h, pp, victim) = setup();
        pp.prime(&mut h);
        h.io_write(victim); // a packet block lands in the primed set
        let r = pp.probe(&mut h);
        assert!(r.activity(), "DDIO fill must evict a primed line");
    }

    #[test]
    fn io_write_to_other_set_is_not_detected() {
        let (mut h, pp, victim) = setup();
        // An address in a *different* set: shift the set-index bits.
        let elsewhere = PhysAddr::new(victim.raw() ^ 0x40);
        assert_ne!(h.llc().locate(elsewhere), h.llc().locate(victim));
        pp.prime(&mut h);
        h.io_write(elsewhere);
        let r = pp.probe(&mut h);
        assert!(!r.activity());
    }

    #[test]
    fn batched_probe_matches_per_access_timing() {
        // The batch replay recovers the per-access classification from
        // the aggregate; a hand-timed reverse walk on a cloned machine
        // must agree in misses, total latency and final clock.
        let (mut h, pp, victim) = setup();
        pp.prime(&mut h);
        h.io_write(victim);
        let mut oracle = h.clone();
        let r = pp.probe(&mut h);
        let mut misses = 0u32;
        let mut total = 0;
        for &a in pp.eviction_set().addresses().iter().rev() {
            let lat = oracle.cpu_read(a);
            total += lat;
            if lat >= oracle.latencies().miss_threshold() {
                misses += 1;
            }
        }
        assert!(r.misses > 0, "the I/O write must be visible");
        assert_eq!(r.misses, misses);
        assert_eq!(r.total_latency, total);
        assert_eq!(h.now(), oracle.now());
        assert_eq!(h.llc().stats(), oracle.llc().stats());
    }

    #[test]
    fn probe_reprimes() {
        let (mut h, pp, victim) = setup();
        pp.prime(&mut h);
        h.io_write(victim);
        let _ = pp.probe(&mut h); // detects and re-primes
        let r2 = pp.probe(&mut h);
        assert!(!r2.activity(), "second probe must be clean after re-prime");
    }

    #[test]
    fn adaptive_defense_makes_io_indistinguishable_from_idle() {
        // Under the adaptive partition the spy's full-associativity
        // eviction set self-conflicts with the reserved I/O ways, so its
        // probe sees a *constant* baseline miss count. The security
        // property is differential: incoming packets change nothing.
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::adaptive());
        let pool = AddressPool::allocate(5, 12288);
        let victim = PhysAddr::new(4096 * 999);
        let target: SliceSet = h.llc().locate(victim);
        let sets = oracle_eviction_sets(h.llc(), &pool, &[target]);
        let pp = PrimeProbe::new(
            sets.into_iter().next().expect("covered"),
            h.latencies().miss_threshold(),
        );
        pp.prime(&mut h);
        let _ = pp.probe(&mut h); // settle
                                  // Baseline: several idle probes.
        let idle: Vec<u32> = (0..5).map(|_| pp.probe(&mut h).misses).collect();
        // Under I/O fire: several probes with packets in between.
        let mut busy = Vec::new();
        for i in 0..5u64 {
            for b in 0..4u64 {
                h.io_write(victim.add_blocks(b));
                h.advance(100 + i);
            }
            busy.push(pp.probe(&mut h).misses);
        }
        assert_eq!(idle, busy, "I/O traffic must not change the probe signal");
        assert_eq!(h.llc().stats().io_evicted_cpu, 0);
    }
}
