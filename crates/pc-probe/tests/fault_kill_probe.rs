//! Kill test for the monitor-level fault site:
//! `cross-epoch-misclassify` inverts one keyed target's classification
//! in the fused multi-target sample (`Monitor::sample_misses`), and
//! the fused ↔ per-target differential must notice for every seed.
//!
//! The detector monitors 32 distinct sets — every keyed modulus in the
//! fault catalog (5..=13) fires within the first 32 keys — and
//! compares each fused sample row against per-target probing on a
//! cloned machine. The per-target path classifies from its own batch
//! aggregate and never consults the fused hook, so it is the oracle;
//! clock and LLC statistics are compared too, pinning that the fused
//! walk is pure scheduling. The no-fault run of the same detector is
//! the negative control (and one more fusion-equivalence regression).

use pc_cache::fault::{self, FaultSite, FaultSpec};
use pc_cache::{CacheGeometry, DdioMode, PhysAddr};
use pc_probe::{oracle_eviction_sets, AddressPool, Monitor, MonitorTarget};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs the fused ↔ per-target differential and returns the first
/// divergence, if any.
fn detect() -> Option<String> {
    let mut h = pc_cache::Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
    let pool = AddressPool::allocate(6, 16384);
    let mut victims: Vec<PhysAddr> = Vec::new();
    let mut targets = Vec::new();
    for page in 0..4000u64 {
        if targets.len() >= 32 {
            break;
        }
        let v = PhysAddr::new(page * 4096);
        let ss = h.llc().locate(v);
        if victims.iter().any(|&p| h.llc().locate(p) == ss) {
            continue;
        }
        let set = oracle_eviction_sets(h.llc(), &pool, &[ss]).remove(0);
        targets.push(MonitorTarget::new(
            targets.len(),
            set,
            h.latencies().miss_threshold(),
        ));
        victims.push(v);
    }
    let m = Monitor::new(targets);
    m.prime_all(&mut h);
    let _ = m.sample_misses(&mut h); // settle the primed state
    for round in 0..3usize {
        // NIC writes on a rotating third of the victims, so rows mix
        // active and idle columns — an inverted column diverges either
        // way (idle: 0 vs associativity; active: k vs accesses − k).
        for (i, &v) in victims.iter().enumerate() {
            if i % 3 == round {
                h.io_write(v);
            }
        }
        let mut oracle = h.clone();
        let fused = m.sample_misses(&mut h);
        let split: Vec<u32> = m
            .targets()
            .iter()
            .map(|t| t.probe.probe(&mut oracle).misses)
            .collect();
        if fused != split {
            return Some(format!("fused sample row diverged (round {round})"));
        }
        if h.now() != oracle.now() {
            return Some(format!("clock after fused sample (round {round})"));
        }
        if h.llc().stats() != oracle.llc().stats() {
            return Some(format!("LLC stats after fused sample (round {round})"));
        }
    }
    None
}

#[test]
fn cross_epoch_misclassify_is_killed_for_every_seed() {
    let _g = serialized();
    let mut survivors = Vec::new();
    for seed in 0..4u64 {
        fault::arm(FaultSpec {
            site: FaultSite::CrossEpochMisclassify,
            seed,
            nth: None,
        });
        let outcome = catch_unwind(AssertUnwindSafe(detect));
        fault::disarm();
        if matches!(outcome, Ok(None)) {
            survivors.push(format!("cross-epoch-misclassify:{seed} survived"));
        }
    }
    assert!(
        survivors.is_empty(),
        "surviving mutants:\n{}",
        survivors.join("\n")
    );
}

/// Negative control: no fault armed → the fused sample is
/// byte-identical to per-target probing.
#[test]
fn fused_and_per_target_agree_with_no_fault_armed() {
    let _g = serialized();
    fault::disarm();
    assert_eq!(detect(), None);
}
