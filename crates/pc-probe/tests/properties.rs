//! Property-based tests for the attacker toolkit.

use pc_cache::{CacheGeometry, DdioMode, Hierarchy, PhysAddr, SliceSet};
use pc_probe::{
    build_eviction_sets_for_index, calibrate_threshold, oracle_eviction_sets, AddressPool,
    PrimeProbe,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Oracle eviction sets are always homogeneous (one slice-set),
    /// exactly `ways` long, and drawn from the pool.
    #[test]
    fn oracle_sets_are_well_formed(slice in 0usize..8, idx in 0usize..32, seed in 0u64..100) {
        let h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(seed, 12288);
        let target = SliceSet::new(slice, idx * 64);
        let sets = oracle_eviction_sets(h.llc(), &pool, &[target]);
        let set = &sets[0];
        prop_assert_eq!(set.len(), 20);
        for &a in set.addresses() {
            prop_assert_eq!(h.llc().locate(a), target);
            prop_assert!(pool.pages().contains(&a.page_base()));
        }
    }

    /// A primed set detects exactly the I/O writes aimed at it: activity
    /// after a hit on the monitored set, silence for misses elsewhere.
    #[test]
    fn prime_probe_detects_exactly_its_set(page in 0u64..4000, seed in 0u64..50) {
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(seed + 1, 12288);
        let victim = PhysAddr::new(page * 4096);
        let target = h.llc().locate(victim);
        let set = oracle_eviction_sets(h.llc(), &pool, &[target]).remove(0);
        let pp = PrimeProbe::new(set, h.latencies().miss_threshold());
        pp.prime(&mut h);
        prop_assert!(!pp.probe(&mut h).activity(), "clean probe after prime");
        h.io_write(victim);
        prop_assert!(pp.probe(&mut h).activity(), "I/O write must be seen");
        // A write to a different *line offset* (other set) is invisible.
        h.io_write(victim.add_blocks(1));
        prop_assert!(!pp.probe(&mut h).activity());
    }

    /// Calibration lands strictly between the hit and miss latencies for
    /// any sample count.
    #[test]
    fn calibration_separates(samples in 1usize..64) {
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(3, 256);
        let thr = calibrate_threshold(&mut h, &pool, samples);
        prop_assert!(thr > h.latencies().llc_hit);
        prop_assert!(thr <= h.latencies().dram);
    }
}

/// Timing-based construction agrees with ground truth for several seeds
/// (moved out of proptest: each case is expensive).
#[test]
fn timing_construction_matches_oracle_across_seeds() {
    for seed in [11u64, 22, 33] {
        let mut h = Hierarchy::new(CacheGeometry::xeon_e5_2660(), DdioMode::enabled());
        let pool = AddressPool::allocate(seed, 8192);
        let thr = h.latencies().miss_threshold();
        let groups = build_eviction_sets_for_index(&mut h, &pool, 64, 20, 8, thr);
        assert!(
            groups.len() >= 6,
            "seed {seed}: only {} groups",
            groups.len()
        );
        for g in &groups {
            let ss = h.llc().locate(g.addresses()[0]);
            assert!(g.addresses().iter().all(|a| h.llc().locate(*a) == ss));
        }
    }
}
