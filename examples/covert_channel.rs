//! Covert channel: a remote trojan sends a message to a spy with no
//! network access, through the LLC.
//!
//! The trojan only broadcasts Ethernet frames whose *sizes* encode
//! ternary symbols; the spy decodes them by probing four cache sets of
//! each monitored ring buffer.
//!
//! Run with: `cargo run --release --example covert_channel`

use packet_chasing::prelude::*;

/// Pack a text message into ternary symbols (5 symbols per byte,
/// little-endian base-3).
fn encode_text(msg: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for byte in msg.bytes() {
        let mut v = u16::from(byte);
        for _ in 0..5 {
            out.push((v % 3) as u8);
            v /= 3;
        }
    }
    out
}

fn decode_text(symbols: &[u8]) -> String {
    symbols
        .chunks(5)
        .filter(|c| c.len() == 5)
        .map(|c| {
            let v = c.iter().rev().fold(0u16, |acc, &s| acc * 3 + u16::from(s));
            char::from(v.min(255) as u8)
        })
        .collect()
}

fn main() {
    let mut tb = TestBed::new(TestBedConfig::paper_baseline());
    let pool = AddressPool::allocate(11, 12288);

    let message = "PACKET CHASING";
    let symbols = encode_text(message);
    println!(
        "trojan message: {message:?} -> {} ternary symbols",
        symbols.len()
    );

    let cfg = ChannelConfig {
        encoding: Encoding::Ternary,
        monitored_buffers: 4, // 4x the single-buffer bandwidth (Fig. 12a)
        ..ChannelConfig::paper_defaults()
    };
    let report = run_channel(&mut tb, &pool, &symbols, &cfg);

    println!(
        "channel: {:.0} bit/s raw bandwidth, {:.1}% symbol error rate",
        report.bandwidth_bps,
        report.error_rate * 100.0
    );
    let received = decode_text(&report.received);
    println!("spy decoded:    {received:?}");
    assert!(
        report.error_rate < 0.1,
        "channel too noisy: {:.1}%",
        report.error_rate * 100.0
    );
}
