//! Defense comparison: the adaptive I/O cache partition silences the spy
//! at negligible cost; ring randomization degrades the attack at real
//! performance cost (§VI–VII).
//!
//! Run with: `cargo run --release --example defense_comparison`

use packet_chasing::core::footprint::{build_monitor, page_aligned_targets, watch};
use packet_chasing::defense::workloads::{nginx, NginxConfig, Workbench};
use packet_chasing::net::ConstantSize;
use packet_chasing::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Events the spy sees during a fixed broadcast burst under `cfg`.
fn spy_events(cfg: TestBedConfig) -> usize {
    let mut tb = TestBed::new(cfg);
    let geom = tb.hierarchy().llc().geometry();
    let pool = AddressPool::allocate(7, 12288);
    let targets = page_aligned_targets(&geom);
    let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);
    let mut rng = SmallRng::seed_from_u64(42);
    let frames = ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(200_000)
        .generate(&mut ConstantSize::blocks(2), tb.now() + 1, 20_000, &mut rng);
    tb.enqueue(frames);
    // Baseline self-noise calibration, then differential measurement.
    monitor.prime_all(tb.hierarchy_mut());
    let baseline: usize = monitor
        .sample(tb.hierarchy_mut())
        .iter()
        .filter(|&&a| a)
        .count();
    let matrix = watch(&mut tb, &monitor, 100, 400_000);
    matrix
        .activity_counts()
        .iter()
        .map(|&c| c.saturating_sub(baseline))
        .sum()
}

fn main() {
    println!("== does the spy still see packets? ==");
    let vulnerable = spy_events(TestBedConfig::paper_baseline());
    let defended = spy_events(TestBedConfig::adaptive_defense());
    println!("DDIO baseline:        {vulnerable} packet-correlated events");
    println!("adaptive partition:   {defended} packet-correlated events");

    println!("\n== what does each defense cost? ==");
    let cfg = NginxConfig::paper_defaults();
    for (name, ddio, randomize) in [
        (
            "vulnerable baseline",
            DdioMode::enabled(),
            RandomizeMode::Off,
        ),
        (
            "fully randomized ring",
            DdioMode::enabled(),
            RandomizeMode::EveryPacket,
        ),
        (
            "partial randomization (1k)",
            DdioMode::enabled(),
            RandomizeMode::EveryNPackets(1000),
        ),
        (
            "adaptive partitioning",
            DdioMode::adaptive(),
            RandomizeMode::Off,
        ),
    ] {
        let driver = DriverConfig {
            randomize,
            ..DriverConfig::paper_defaults()
        };
        let mut bench = Workbench::new(CacheGeometry::xeon_e5_2660(), ddio, driver, 5);
        nginx(&mut bench, &cfg, 200); // warm up
        let m = nginx(&mut bench, &cfg, 800);
        println!("{name:<28} {:.1} kRPS", m.krps());
    }

    assert!(
        defended * 10 < vulnerable.max(1),
        "defense must suppress the signal"
    );
    println!("\nadaptive partitioning blocks the channel at ~no throughput cost (Fig. 14/16)");
}
