//! Quickstart: watch the NIC fill its ring buffers through the cache.
//!
//! Sets up the paper's machine (Xeon-class LLC, DDIO on, IGB driver),
//! points a PRIME+PROBE monitor at the 256 page-aligned cache sets, and
//! shows that incoming broadcast frames are visible to a process with no
//! network access at all.
//!
//! Run with: `cargo run --release --example quickstart`

use packet_chasing::core::footprint::{build_monitor, page_aligned_targets, watch};
use packet_chasing::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // The victim machine: 20 MiB sliced LLC, DDIO enabled, stock driver.
    let mut tb = TestBed::new(TestBedConfig::paper_baseline());
    let geom = tb.hierarchy().llc().geometry();
    println!(
        "victim: {} MiB LLC, {} slices x {} sets x {} ways, ring of {} buffers",
        geom.total_bytes() >> 20,
        geom.slices(),
        geom.sets_per_slice(),
        geom.ways(),
        tb.driver().ring().len()
    );

    // The spy: its own pages, eviction sets for every page-aligned set.
    let pool = AddressPool::allocate(7, 12288);
    let targets = page_aligned_targets(&geom);
    let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);
    println!("spy: monitoring {} page-aligned cache sets", targets.len());

    // Phase 1 — idle network.
    let idle = watch(&mut tb, &monitor, 100, 400_000);
    let idle_events: usize = idle.activity_counts().iter().sum();
    println!("idle:      {idle_events} activity events over 100 samples");

    // Phase 2 — a remote host broadcasts 2-block Ethernet frames.
    let mut rng = SmallRng::seed_from_u64(42);
    let frames = ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(200_000)
        .generate(
            &mut packet_chasing::net::ConstantSize::blocks(2),
            tb.now() + 1,
            20_000,
            &mut rng,
        );
    tb.enqueue(frames);
    let busy = watch(&mut tb, &monitor, 100, 400_000);
    let busy_counts = busy.activity_counts();
    let busy_events: usize = busy_counts.iter().sum();
    let active_sets = busy_counts.iter().filter(|&&c| c > 0).count();
    println!("receiving: {busy_events} activity events; {active_sets}/256 sets lit up");
    println!(
        "           (the ~{}% silent sets host no ring buffer — the Figure 6 distribution)",
        (256 - active_sets) * 100 / 256
    );

    assert_eq!(idle_events, 0, "idle network must be silent");
    assert!(busy_events > 0, "receiving network must be visible");
    println!("\npacket chasing works: network activity is visible with zero network access");
}
