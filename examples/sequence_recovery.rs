//! Sequence recovery: deduce the order in which the NIC fills its ring
//! buffers, purely from cache observations (Algorithm 1 / Table I).
//!
//! Run with: `cargo run --release --example sequence_recovery`

use packet_chasing::core::footprint::page_aligned_targets;
use packet_chasing::core::sequencer::{
    ground_truth_sequence, recover_window, SequenceQuality, SequencerConfig,
};
use packet_chasing::net::ConstantSize;
use packet_chasing::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(2020));
    let geom = tb.hierarchy().llc().geometry();
    let pool = AddressPool::allocate(99, 12288);

    // Monitor a 32-set window of the 256 page-aligned sets, as in the
    // paper's Table I setup.
    let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(32).collect();

    // A remote sender streams 2-block broadcast frames at 200k fps. The
    // sender need not cooperate: any steady traffic works.
    let mut rng = SmallRng::seed_from_u64(5);
    let frames = ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(200_000)
        .generate(&mut ConstantSize::blocks(2), tb.now() + 1, 80_000, &mut rng);
    tb.enqueue(frames);

    let cfg = SequencerConfig {
        samples: 18_000,
        interval: 33_000,
        ..Default::default()
    };
    println!(
        "sampling {} probes over 32 page-aligned sets...",
        cfg.samples
    );
    let t0 = tb.now();
    let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
    let elapsed = tb.now() - t0;

    let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
    let quality = SequenceQuality::evaluate(&recovered, &truth, elapsed);

    println!("ground truth ({} buffers): {truth:?}", truth.len());
    println!("recovered    ({} buffers): {recovered:?}", recovered.len());
    println!(
        "quality: Levenshtein {} ({:.1}% error), longest mismatch {}, {:.2} simulated minutes",
        quality.levenshtein,
        quality.error_rate * 100.0,
        quality.longest_mismatch,
        quality.minutes()
    );
    println!("paper (Table I): Levenshtein 25.2 (9.8% error), longest mismatch 5.2");
    assert!(quality.error_rate < 0.25, "recovery failed");
}
