//! Web fingerprinting: identify which site a victim visits from the
//! packet-size trace the spy recovers through the cache (§V).
//!
//! Run with: `cargo run --release --example web_fingerprint`

use packet_chasing::core::fingerprint::{evaluate_closed_world, CaptureConfig};
use packet_chasing::net::ClosedWorld;
use packet_chasing::prelude::*;

fn main() {
    let world = ClosedWorld::paper_five_sites();
    println!("closed world: {} sites", world.len());
    for site in world.sites() {
        println!("  - {}", site.name());
    }

    let capture = CaptureConfig::paper_defaults();
    println!("\ntraining 4 captures/site, evaluating 6 trials/site (DDIO on)...");
    let result = evaluate_closed_world(
        TestBedConfig::paper_baseline(),
        world.sites(),
        4,
        6,
        0.25,
        &capture,
        1234,
    );

    println!(
        "accuracy: {:.1}% over {} trials (paper: 89.7%)",
        result.accuracy * 100.0,
        result.trials
    );
    println!("confusion matrix (rows = truth, cols = predicted):");
    for (i, row) in result.confusion.iter().enumerate() {
        println!("  {:<14} {row:?}", world.sites()[i].name());
    }
    assert!(result.accuracy > 0.5, "fingerprinting failed");
}
