//! # packet-chasing — reproduction of *Packet Chasing: Spying on Network
//! Packets over a Cache Side-Channel* (Taram, Venkat, Tullsen; ISCA 2020)
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`cache`] | sliced LLC + DDIO + adaptive-partition simulator |
//! | [`nic`] | IGB driver receive-path model (rx ring, buffer reuse) |
//! | [`net`] | frames, line-rate model, LFSR, traffic and web traces |
//! | [`probe`] | PRIME+PROBE toolkit (eviction sets, monitors) |
//! | [`core`] | the attack: footprint, sequencer, covert channel, fingerprinting |
//! | [`defense`] | ring randomization + adaptive partitioning evaluation |
//!
//! See `README.md` for a tour and `ARCHITECTURE.md` for the workspace
//! map, data flow and determinism contract. The `repro` binary
//! (`cargo run --release -p pc-bench --bin repro -- all`) regenerates
//! every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use packet_chasing::prelude::*;
//!
//! // Stand up the victim machine and a spy.
//! let mut tb = TestBed::new(TestBedConfig::paper_baseline());
//! let pool = AddressPool::allocate(1, 12288);
//! let geom = tb.hierarchy().llc().geometry();
//! let targets: Vec<_> = page_aligned_targets(&geom).into_iter().take(8).collect();
//! let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);
//!
//! // No traffic: the page-aligned sets stay quiet.
//! monitor.prime_all(tb.hierarchy_mut());
//! let quiet = monitor.sample(tb.hierarchy_mut());
//! assert!(quiet.iter().all(|a| !a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pc_cache as cache;
pub use pc_core as core;
pub use pc_defense as defense;
pub use pc_net as net;
pub use pc_nic as nic;
pub use pc_probe as probe;

/// The most commonly used types and functions, one import away.
pub mod prelude {
    pub use pc_cache::{
        AccessKind, AdaptiveConfig, CacheGeometry, Cycles, DdioMode, Domain, Hierarchy,
        LatencyModel, PhysAddr, SliceSet, SlicedCache,
    };
    pub use pc_core::chasing::ChasingSpy;
    pub use pc_core::covert::{
        lfsr_symbols, run_channel, run_chased_channel, ChannelConfig, Encoding,
    };
    pub use pc_core::fingerprint::{
        capture_trace, evaluate_closed_world, CaptureConfig, CorrelationClassifier,
    };
    pub use pc_core::footprint::{build_monitor, page_aligned_targets, ring_histogram, watch};
    pub use pc_core::sequencer::{recover_window, SequencerConfig};
    pub use pc_core::{TestBed, TestBedConfig};
    pub use pc_defense::workloads::{nginx, NginxConfig, Workbench};
    pub use pc_net::{ArrivalSchedule, EthernetFrame, LineRate, ScheduledFrame};
    pub use pc_nic::{DriverConfig, IgbDriver, PageAllocator, RandomizeMode};
    pub use pc_probe::{AddressPool, EvictionSet, Monitor, PrimeProbe};
}
