//! Cross-crate integration tests: the full attack pipeline against the
//! simulated machine, and the defenses against the attack.

use packet_chasing::core::footprint::{build_monitor, page_aligned_targets, ring_histogram, watch};
use packet_chasing::core::sequencer::{
    ground_truth_sequence, recover_window, SequenceQuality, SequencerConfig,
};
use packet_chasing::net::ConstantSize;
use packet_chasing::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn broadcast(tb: &mut TestBed, fps: u64, count: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let frames = ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(fps)
        .generate(&mut ConstantSize::blocks(2), tb.now() + 1, count, &mut rng);
    tb.enqueue(frames);
}

#[test]
fn footprint_discovery_matches_ring_ground_truth() {
    let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(101));
    let geom = tb.hierarchy().llc().geometry();
    let pool = AddressPool::allocate(55, 12288);
    let targets = page_aligned_targets(&geom);
    let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);

    broadcast(&mut tb, 200_000, 30_000, 1);
    let matrix = watch(&mut tb, &monitor, 150, 400_000);
    let counts = matrix.activity_counts();

    // Every active set hosts at least one ring buffer, and most sets
    // hosting buffers were seen at least once.
    let hist = ring_histogram(tb.hierarchy().llc(), tb.driver());
    let mut false_positives = 0;
    let mut hits = 0;
    let mut occupied = 0;
    for (set, &events) in counts.iter().enumerate() {
        if hist[set] == 0 {
            false_positives += usize::from(events > 0);
        } else {
            occupied += 1;
            hits += usize::from(events > 0);
        }
    }
    assert_eq!(false_positives, 0, "activity on sets with no buffer");
    assert!(
        hits * 10 >= occupied * 9,
        "only {hits}/{occupied} buffer sets observed"
    );
}

#[test]
fn sequence_recovery_hits_paper_quality() {
    let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(2020));
    let geom = tb.hierarchy().llc().geometry();
    let pool = AddressPool::allocate(99, 12288);
    let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(32).collect();
    broadcast(&mut tb, 200_000, 70_000, 5);
    let cfg = SequencerConfig {
        samples: 16_000,
        interval: 33_000,
        ..Default::default()
    };
    let recovered = recover_window(&mut tb, &pool, &targets, &cfg);
    let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
    let q = SequenceQuality::evaluate(&recovered, &truth, 0);
    // Paper: 9.8% error with CI up to 13.6%.
    assert!(
        q.error_rate < 0.15,
        "sequence error {:.1}% exceeds the paper's envelope ({:?})",
        q.error_rate * 100.0,
        q
    );
}

#[test]
fn adaptive_partition_blinds_the_spy() {
    // Identical traffic, identical spy; only the DDIO mode differs.
    let run = |cfg: TestBedConfig| {
        let mut tb = TestBed::new(cfg.with_seed(303));
        let geom = tb.hierarchy().llc().geometry();
        let pool = AddressPool::allocate(77, 12288);
        let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(64).collect();
        let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);
        monitor.prime_all(tb.hierarchy_mut());
        // Warm-up traffic: under the adaptive defense this grows the I/O
        // partitions, which costs the spy a *constant* per-set
        // self-conflict — calibrated away by any real attacker. The
        // leak, if any, is what correlates with packets beyond that
        // steady-state baseline.
        broadcast(&mut tb, 200_000, 10_000, 6);
        tb.drain();
        let mut baseline = vec![0u32; targets.len()];
        for _ in 0..20 {
            let next = tb.now() + 400_000;
            tb.advance_to(next);
            for (b, m) in baseline
                .iter_mut()
                .zip(monitor.sample_misses(tb.hierarchy_mut()))
            {
                *b = (*b).max(m);
            }
        }
        tb.hierarchy_mut().llc_mut().reset_stats();
        broadcast(&mut tb, 200_000, 20_000, 7);
        let mut excess = 0u64;
        for _ in 0..100 {
            let next = tb.now() + 400_000;
            tb.advance_to(next);
            for (m, b) in monitor
                .sample_misses(tb.hierarchy_mut())
                .iter()
                .zip(&baseline)
            {
                excess += u64::from(m.saturating_sub(*b));
            }
        }
        (excess, tb.hierarchy().llc().stats().io_evicted_cpu)
    };
    let (vulnerable_excess, vulnerable_leak) = run(TestBedConfig::paper_baseline());
    let (defended_excess, defended_leak) = run(TestBedConfig::adaptive_defense());
    assert!(vulnerable_excess > 100, "baseline attack must see packets");
    assert!(vulnerable_leak > 0);
    assert_eq!(
        defended_leak, 0,
        "adaptive mode must never evict CPU lines on I/O fills"
    );
    assert!(
        defended_excess * 20 < vulnerable_excess,
        "defense leak {defended_excess} vs vulnerable {vulnerable_excess}"
    );
}

#[test]
fn full_randomization_destroys_the_sequence() {
    let run = |randomize: RandomizeMode| {
        let mut cfg = TestBedConfig::paper_baseline().with_seed(404);
        cfg.driver.randomize = randomize;
        let mut tb = TestBed::new(cfg);
        let geom = tb.hierarchy().llc().geometry();
        let pool = AddressPool::allocate(88, 12288);
        let targets: Vec<SliceSet> = page_aligned_targets(&geom).into_iter().take(16).collect();
        broadcast(&mut tb, 100_000, 40_000, 9);
        let scfg = SequencerConfig {
            samples: 10_000,
            interval: 33_000,
            ..Default::default()
        };
        let recovered = recover_window(&mut tb, &pool, &targets, &scfg);
        let truth = ground_truth_sequence(tb.hierarchy().llc(), tb.driver(), &targets);
        SequenceQuality::evaluate(&recovered, &truth, 0).error_rate
    };
    let stock = run(RandomizeMode::Off);
    let randomized = run(RandomizeMode::EveryPacket);
    assert!(stock < 0.25, "stock driver sequence error {stock:.2}");
    assert!(
        randomized > stock + 0.3,
        "randomization must degrade recovery (stock {stock:.2}, randomized {randomized:.2})"
    );
}

#[test]
fn bigger_rings_dilute_the_signal_per_set() {
    // §VI-c: "the required probing of the cache scales with the size of
    // the ring". With 4096 buffers over 256 page-aligned sets, each
    // monitored set aggregates ~16 buffers, so per-buffer information
    // (which buffer fired?) degrades even though raw activity remains.
    let run = |ring_size: usize| {
        let mut cfg = TestBedConfig::paper_baseline().with_seed(606);
        cfg.driver.ring_size = ring_size;
        let tb = TestBed::new(cfg);
        let hist = ring_histogram(tb.hierarchy().llc(), tb.driver());
        let unique = hist.iter().filter(|&&c| c == 1).count();
        let empty = hist.iter().filter(|&&c| c == 0).count();
        (unique, empty)
    };
    let (unique_256, empty_256) = run(256);
    let (unique_4096, empty_4096) = run(4096);
    // The covert channel needs unique-set buffers; the max-size ring
    // leaves almost none, and no set stays empty to calibrate against.
    assert!(
        unique_256 > 60,
        "default ring has ~94 unique-set buffers, got {unique_256}"
    );
    assert!(
        unique_4096 < unique_256 / 4,
        "4096-buffer ring should leave few unique sets ({unique_4096} vs {unique_256})"
    );
    assert!(empty_256 > 60);
    assert_eq!(empty_4096, 0, "max ring covers every page-aligned set");
}

#[test]
fn attack_works_without_ddio_via_driver_reads() {
    let mut tb = TestBed::new(TestBedConfig::no_ddio().with_seed(505));
    let geom = tb.hierarchy().llc().geometry();
    let pool = AddressPool::allocate(66, 12288);
    let targets = page_aligned_targets(&geom);
    let monitor = build_monitor(tb.hierarchy().llc(), &pool, &targets);
    let idle = watch(&mut tb, &monitor, 50, 400_000);
    broadcast(&mut tb, 200_000, 20_000, 11);
    let busy = watch(&mut tb, &monitor, 50, 400_000);
    let idle_events: usize = idle.activity_counts().iter().sum();
    let busy_events: usize = busy.activity_counts().iter().sum();
    assert_eq!(idle_events, 0);
    assert!(
        busy_events > 50,
        "the attack must survive DDIO being disabled (saw {busy_events} events)"
    );
}
