//! Integration tests for the covert channels (§IV).

use packet_chasing::core::covert::{class_to_ternary, trojan_schedule};
use packet_chasing::core::levenshtein::error_rate;
use packet_chasing::prelude::*;

#[test]
fn single_buffer_ternary_channel_is_reliable() {
    let mut cfg_bed = TestBedConfig::paper_baseline().with_seed(61);
    cfg_bed.driver.ring_size = 32;
    let mut tb = TestBed::new(cfg_bed);
    let pool = AddressPool::allocate(71, 12288);
    let symbols = lfsr_symbols(Encoding::Ternary, 60, 0x1bad);
    let cfg = ChannelConfig {
        monitored_buffers: 1,
        packet_rate_fps: 150_000,
        probe_rate_hz: 28_000,
        background_noise_aps: 0,
        ..ChannelConfig::paper_defaults()
    };
    let report = run_channel(&mut tb, &pool, &symbols, &cfg);
    assert!(
        report.error_rate < 0.10,
        "error {:.1}% over {} symbols",
        report.error_rate * 100.0,
        report.sent_symbols
    );
    assert!(report.bandwidth_bps > 500.0);
}

#[test]
fn bandwidth_scales_with_monitored_buffers() {
    let run = |n: usize| {
        let mut tb = TestBed::new(TestBedConfig::paper_baseline().with_seed(62));
        let pool = AddressPool::allocate(72, 12288);
        let symbols = lfsr_symbols(Encoding::Ternary, 30 * n, 0x2bad);
        let cfg = ChannelConfig {
            monitored_buffers: n,
            probe_rate_hz: 28_000,
            window: 2,
            ..ChannelConfig::paper_defaults()
        };
        run_channel(&mut tb, &pool, &symbols, &cfg)
    };
    let one = run(1);
    let four = run(4);
    let ratio = four.bandwidth_bps / one.bandwidth_bps;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4 buffers should give ~4x bandwidth, got {ratio:.2}x"
    );
    assert!(
        four.error_rate < 0.15,
        "multi-buffer error {:.1}%",
        four.error_rate * 100.0
    );
}

#[test]
fn chased_channel_error_jumps_at_high_rate() {
    let run = |rate: u64| {
        let mut cfg = TestBedConfig::paper_baseline().with_seed(63);
        cfg.driver.ring_size = 256;
        let mut tb = TestBed::new(cfg);
        let pool = AddressPool::allocate(73, 16384);
        let symbols = lfsr_symbols(Encoding::Ternary, 1_200, 0x3bad);
        run_chased_channel(&mut tb, &pool, &symbols, rate)
    };
    let low = run(100_000); // ~160 kbps
    let high = run(400_000); // ~640 kbps
    assert!(
        low.error_rate < 0.05,
        "low-rate error {:.1}%",
        low.error_rate * 100.0
    );
    assert!(
        high.error_rate > low.error_rate + 0.05,
        "expected the 640 kbps error jump: low {:.2} high {:.2}",
        low.error_rate,
        high.error_rate
    );
}

#[test]
fn class_mapping_round_trips_through_frames() {
    for symbol in 0..3u8 {
        let frame = Encoding::Ternary.frame_for(symbol);
        // The driver prefetch makes 1-block packets read as class 2.
        let class = frame.cache_blocks().clamp(2, 4) as u8;
        assert_eq!(class_to_ternary(class), symbol);
    }
}

#[test]
fn trojan_schedule_respects_symbol_structure() {
    let symbols = [0u8, 1, 2];
    let sched = trojan_schedule(&symbols, Encoding::Ternary, 8, 200_000, 0, 5);
    assert_eq!(sched.len(), 24);
    // Without reordering (utilization is low), sizes appear in symbol
    // order.
    let sent: Vec<u8> = sched
        .iter()
        .map(|f| class_to_ternary(f.frame.cache_blocks() as u8))
        .collect();
    let expected: Vec<u8> = symbols
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, 8))
        .collect();
    assert_eq!(error_rate(&sent, &expected), 0.0);
}
