//! Integration tests for the web-fingerprinting side channel (§V).

use packet_chasing::core::fingerprint::{
    evaluate_closed_world, login_trace_pair, true_size_classes, CaptureConfig,
    EditDistanceClassifier,
};
use packet_chasing::core::levenshtein::levenshtein;
use packet_chasing::net::{ClosedWorld, LoginOutcome};
use packet_chasing::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn closed_world_accuracy_beats_chance_by_far() {
    let world = ClosedWorld::paper_five_sites();
    let capture = CaptureConfig {
        trace_len: 80,
        ..CaptureConfig::paper_defaults()
    };
    let mut bed = TestBedConfig::paper_baseline();
    bed.driver.ring_size = 64; // keep the integration test quick

    // 4 training captures / 4 trials per site at 15% insert/delete
    // noise: small enough to stay quick, and the accuracy floor holds
    // with margin across capture-seed choices (captures draw per-trial
    // seeded streams — see `evaluate_closed_world` — so single-seed
    // flukes at tinier scales / higher noise are real and were observed
    // at 3×4, noise 0.2).
    let result = evaluate_closed_world(bed, world.sites(), 4, 4, 0.15, &capture, 31337);
    // Chance is 20%; the paper reports ~90%.
    assert!(
        result.accuracy >= 0.6,
        "accuracy {:.1}% too low ({} trials)",
        result.accuracy * 100.0,
        result.trials
    );
}

#[test]
fn login_outcome_is_recoverable_through_the_cache() {
    let capture = CaptureConfig::paper_defaults();
    let mut bed = TestBedConfig::paper_baseline();
    bed.driver.ring_size = 64;
    let (ok_orig, ok_rec) = login_trace_pair(bed, LoginOutcome::Successful, &capture, 41);
    let (bad_orig, bad_rec) = login_trace_pair(bed, LoginOutcome::Unsuccessful, &capture, 42);

    // Recovered traces must resemble their own ground truth far more
    // than the other outcome's (edit distance on size classes).
    let d_ok_self = levenshtein(&ok_rec, &ok_orig);
    let d_ok_cross = levenshtein(&ok_rec, &bad_orig);
    let d_bad_self = levenshtein(&bad_rec, &bad_orig);
    let d_bad_cross = levenshtein(&bad_rec, &ok_orig);
    assert!(
        d_ok_self < d_ok_cross,
        "success trace misattributed ({d_ok_self} vs {d_ok_cross})"
    );
    assert!(
        d_bad_self < d_bad_cross,
        "failure trace misattributed ({d_bad_self} vs {d_bad_cross})"
    );
}

#[test]
fn recovered_trace_tracks_ground_truth_sizes() {
    let world = ClosedWorld::paper_five_sites();
    let mut rng = SmallRng::seed_from_u64(17);
    let frames = world.sites()[1].page_load(0.05, &mut rng);
    let truth = true_size_classes(&frames, 60);

    let mut bed = TestBedConfig::paper_baseline().with_seed(18);
    bed.driver.ring_size = 64;
    let mut tb = TestBed::new(bed);
    let pool = AddressPool::allocate(19, 16384);
    let mut spy = ChasingSpy::for_ring(tb.hierarchy().llc(), &pool, tb.driver());
    let cfg = CaptureConfig {
        trace_len: 60,
        ..CaptureConfig::paper_defaults()
    };
    let captured =
        packet_chasing::core::fingerprint::capture_trace(&mut tb, &mut spy, &frames, &cfg);

    let distance = levenshtein(&captured, &truth);
    assert!(
        distance <= truth.len() * 3 / 10,
        "captured trace drifts too far from ground truth: {distance}/{}",
        truth.len()
    );
}

#[test]
fn classifier_handles_insertion_noise() {
    // The edit-distance classifier is specifically there to absorb
    // insert/delete noise; verify on synthetic classes.
    let a: Vec<u8> = [4, 4, 4, 1, 2, 4, 4, 4, 1, 3].repeat(5);
    let b: Vec<u8> = [1, 1, 4, 2, 1, 1, 4, 3, 1, 1].repeat(5);
    let clf = EditDistanceClassifier::train(
        vec!["a".into(), "b".into()],
        vec![vec![a.clone()], vec![b.clone()]],
    );
    // Perturb `a` with drops and duplicates.
    let mut noisy = a.clone();
    noisy.remove(3);
    noisy.remove(10);
    noisy.insert(20, 1);
    noisy.insert(30, 4);
    assert_eq!(clf.classify(&noisy).0, 0);
}
