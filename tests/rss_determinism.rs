//! RSS determinism suite: the multi-queue delivery contract through
//! the public API.
//!
//! Three pillars, matching the TestBed module docs:
//!
//! * **Steering is pure**: which queue a flow lands on is a function of
//!   `(seed, flow tuple)` alone — no RNG stream, no engine, no timing.
//! * **Engines agree**: a multi-queue bed produces byte-identical
//!   ground truth and cache state on the batched, per-frame and
//!   per-access engines (the CI determinism legs additionally byte-diff
//!   whole runs across process-level thread counts).
//! * **Queue count 1 is the pre-RSS model**: flow tags are inert on a
//!   single-queue bed, so every pre-RSS golden replays unchanged.

use pc_core::{RxEngine, TestBed, TestBedConfig};
use pc_net::{ArrivalSchedule, FlowCycle, FlowTuple, LineRate, ScheduledFrame, UniformSizes};
use pc_nic::RssConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A flow-tagged arrival schedule: `count` frames of mixed sizes from
/// `clients` synthetic clients at 150k fps.
fn flow_schedule(clients: u64, count: usize, seed: u64) -> Vec<ScheduledFrame> {
    let mut gen = FlowCycle::clients(UniformSizes::full_range(), clients, 80);
    let mut rng = SmallRng::seed_from_u64(seed);
    ArrivalSchedule::new(LineRate::gigabit())
        .frames_per_second(150_000)
        .generate(&mut gen, 1, count, &mut rng)
}

/// Runs one schedule to completion on a fresh bed.
fn run(cfg: TestBedConfig, schedule: Vec<ScheduledFrame>) -> TestBed {
    let mut tb = TestBed::new(cfg);
    tb.enqueue(schedule);
    tb.drain();
    tb
}

#[test]
fn steering_is_a_pure_function_of_seed_and_flow() {
    for queues in [2usize, 4, 8] {
        let a = RssConfig::new(queues, 2020);
        let b = RssConfig::new(queues, 2020);
        for i in 0..512 {
            let flow = FlowTuple::client(i, 80);
            assert_eq!(a.steer(flow), b.steer(flow), "queues {queues}, flow {i}");
        }
    }
}

#[test]
fn multi_queue_delivery_is_byte_identical_across_engines() {
    for queues in [2usize, 4] {
        let schedule = flow_schedule(9, 400, 77);
        let cfg = |engine| {
            TestBedConfig::paper_baseline()
                .with_seed(4242)
                .with_queues(queues)
                .with_rx_engine(engine)
        };
        let batched = run(cfg(RxEngine::Batched), schedule.clone());
        let per_frame = run(cfg(RxEngine::PerFrame), schedule.clone());
        let per_access = run(cfg(RxEngine::PerAccess), schedule);
        for other in [&per_frame, &per_access] {
            assert_eq!(batched.records(), other.records());
            assert_eq!(batched.now(), other.now());
            assert_eq!(
                batched.hierarchy().llc().stats(),
                other.hierarchy().llc().stats()
            );
            for q in 0..queues {
                assert_eq!(
                    batched.queue_driver(q).packets_received(),
                    other.queue_driver(q).packets_received(),
                    "queue {q} packet count"
                );
            }
        }
        let total: u64 = (0..queues)
            .map(|q| batched.queue_driver(q).packets_received())
            .sum();
        assert_eq!(total, 400, "every frame lands on exactly one queue");
    }
}

#[test]
fn rss_spreads_client_flows_over_every_queue() {
    let tb = run(
        TestBedConfig::paper_baseline().with_seed(5).with_queues(4),
        flow_schedule(64, 600, 11),
    );
    for q in 0..4 {
        assert!(
            tb.queue_driver(q).packets_received() > 0,
            "queue {q} never received a frame from 64 client flows"
        );
    }
}

#[test]
fn single_queue_makes_flow_tags_inert() {
    // The pre-RSS golden contract: on a 1-queue bed, a flow-tagged
    // schedule behaves exactly like the same schedule with the tags
    // stripped (the legacy all-zero flow), because steering never
    // draws RNG and everything lands on queue 0 either way.
    let tagged = flow_schedule(16, 500, 33);
    let stripped: Vec<ScheduledFrame> = tagged
        .iter()
        .map(|sf| ScheduledFrame::new(sf.at, sf.frame))
        .collect();
    let cfg = TestBedConfig::paper_baseline().with_seed(99).with_queues(1);
    let a = run(cfg, tagged);
    let b = run(cfg, stripped);
    assert_eq!(a.records(), b.records());
    assert_eq!(a.now(), b.now());
    assert_eq!(a.hierarchy().llc().stats(), b.hierarchy().llc().stats());
    assert_eq!(
        a.queue_driver(0).packets_received(),
        b.queue_driver(0).packets_received()
    );
}

#[test]
fn legacy_schedules_leave_extra_queues_idle() {
    // Schedules with no flow tags pin to queue 0 at any queue count, so
    // widening the NIC cannot disturb single-ring experiments.
    let legacy: Vec<ScheduledFrame> = flow_schedule(1, 300, 7)
        .into_iter()
        .map(|sf| ScheduledFrame::new(sf.at, sf.frame))
        .collect();
    let narrow = run(
        TestBedConfig::paper_baseline().with_seed(1).with_queues(1),
        legacy.clone(),
    );
    let wide = run(
        TestBedConfig::paper_baseline().with_seed(1).with_queues(4),
        legacy,
    );
    assert_eq!(narrow.records(), wide.records());
    assert_eq!(narrow.now(), wide.now());
    assert_eq!(
        narrow.hierarchy().llc().stats(),
        wide.hierarchy().llc().stats()
    );
    for q in 1..4 {
        assert_eq!(wide.queue_driver(q).packets_received(), 0, "queue {q} idle");
    }
}
