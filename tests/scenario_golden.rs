//! Golden-output snapshots for `repro scenario <name>` — every registry
//! entry, pinned byte for byte.
//!
//! Each scenario's report at the standard CI parameters
//! (`Scale::Quick`, seed 2020) is compared against a checked-in
//! snapshot under `tests/golden/`. Any change to a scenario's output —
//! intended or not — shows up as a reviewable diff in the golden file
//! rather than as a silent drift only the CI byte-diff job would catch
//! (and that job only compares a run against *itself* on other thread
//! counts, not against history).
//!
//! To refresh snapshots after an intentional output change:
//!
//! ```text
//! PC_BLESS=1 cargo test --release --test scenario_golden
//! ```
//!
//! (documented in `crates/bench/README.md`). The bless run rewrites the
//! golden files; commit the diff with the change that caused it.

use pc_bench::experiments::Scale;
use pc_bench::scenario;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// Seed the CI determinism job uses throughout.
const SEED: u64 = 2020;

/// The fault state is process-global; every test here takes the lock
/// so the guard test's brief arming can never leak into a scenario
/// run happening on another test thread.
static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    let bless = std::env::var_os("PC_BLESS").is_some_and(|v| v == "1");
    if bless {
        // A snapshot taken with a fault armed would enshrine the
        // mutation as truth; refuse (covers both a programmatic arming
        // and a PC_FAULT variable in the blessing environment).
        if let Err(e) = pc_cache::fault::bless_guard() {
            panic!("refusing to bless goldens: {e}");
        }
    }
    bless
}

fn check(name: &str, actual: &str) -> Result<(), String> {
    let path = golden_dir().join(format!("{name}.golden.txt"));
    if blessing() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual).expect("write golden");
        return Ok(());
    }
    let want = fs::read_to_string(&path).map_err(|e| {
        format!("missing golden {path:?} ({e}); run PC_BLESS=1 cargo test --test scenario_golden")
    })?;
    if want == actual {
        return Ok(());
    }
    Err(format!(
        "scenario `{name}` diverged from its golden snapshot.\n\
         If intentional, re-bless: PC_BLESS=1 cargo test --release --test scenario_golden\n\
         --- golden ---\n{want}\n--- actual ---\n{actual}"
    ))
}

/// One test over the whole registry (rather than a test per scenario)
/// so a scenario added to the registry can never be forgotten here.
#[test]
fn every_scenario_matches_its_golden_snapshot() {
    let _g = serialized();
    let mut failures = Vec::new();
    for s in scenario::registry() {
        let report = s.run(Scale::Quick, SEED);
        assert!(
            report.ends_with('\n') && !report.is_empty(),
            "{}: reports are newline-terminated",
            s.name()
        );
        if let Err(e) = check(s.name(), &report) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// The `repro scenario list` body is an output contract too (CI
/// byte-diffs it): name-sorted, two-column, stable. The CLI and this
/// test share one renderer (`scenario::render_list`), so the snapshot
/// pins what `repro` actually prints.
#[test]
fn scenario_list_matches_its_golden_snapshot() {
    let _g = serialized();
    check("scenario-list", &scenario::render_list()).unwrap();
}

/// A seeded 64-tenant fleet run is an output contract like any single
/// scenario: the merged report (per-template percentiles, per-mode
/// breakdown, aggregate) is pinned byte for byte. Workers are pinned to
/// 1 here only to keep the snapshot independent of the test
/// environment's `PC_BENCH_THREADS`; the fleet determinism suite and
/// the CI byte-diff leg prove any worker count produces these bytes.
#[test]
fn fleet_64_matches_its_golden_snapshot() {
    let _g = serialized();
    let mut cfg = pc_bench::fleet::FleetConfig::standard(64, SEED, Scale::Quick);
    cfg.threads = 1;
    check("fleet-64", &pc_bench::fleet::run_fleet(&cfg).render()).unwrap();
}

/// `PC_BLESS=1` must refuse to rewrite snapshots while a fault is
/// armed: a golden blessed from a mutated simulator would silently
/// become the reference every later run is compared against. (The env
/// half of the guard — a set `PC_FAULT` variable — is unit-tested in
/// `pc_cache::fault`; mutating the process environment here would race
/// the other tests.)
#[test]
fn blessing_refuses_while_a_fault_is_armed() {
    let _g = serialized();
    pc_cache::fault::arm(pc_cache::fault::FaultSpec {
        site: pc_cache::fault::FaultSite::StatOffByOne,
        seed: 0,
        nth: None,
    });
    let guard = pc_cache::fault::bless_guard();
    pc_cache::fault::disarm();
    let err = guard.expect_err("an armed fault must block blessing");
    assert!(err.contains("stat-off-by-one"), "names the culprit: {err}");
}
