//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! a small wall-clock harness behind criterion's API: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros (both invocation forms).
//!
//! Measurement model: each benchmark runs one untimed warm-up pass, then
//! `sample_size` timed samples; the median per-iteration time is printed
//! as `name  time: [..]`. Results go to stdout and, when the
//! `CRITERION_JSON` environment variable names a file, as JSON lines
//! (`{"name": .., "median_ns": .., "samples": ..}`) appended to it so
//! callers can track perf trajectories machine-readably.
//!
//! A benchmark binary accepts an optional substring filter argument,
//! mirroring `cargo bench -- <filter>`, and ignores criterion's own
//! flags (`--bench`, `--save-baseline`, ...) so existing invocations
//! keep working.

#![forbid(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark case (a name plus an optional parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (used inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Things accepted where criterion expects a benchmark id.
pub trait IntoBenchmarkId {
    /// The display name to report under.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Times closures for one benchmark case.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: one warm-up, then `sample_size` timed
    /// samples. The routine's return value is black-boxed so the work is
    /// not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.measured.clear();
        self.measured.reserve(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.measured.push(t.elapsed());
        }
    }
}

fn median_ns(samples: &mut [Duration]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2].as_nanos()
}

/// The harness: holds configuration and the CLI filter.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Reads the benchmark-name filter from `std::env::args`, skipping
    /// flags cargo/criterion pass through.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--noplot" | "--quiet" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                filter => self.filter = Some(filter.to_owned()),
            }
        }
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&self, name: &str, measured: &mut [Duration]) {
        let med = median_ns(measured);
        println!(
            "{name:<56} time: [{}]   ({} samples)",
            fmt_ns(med),
            measured.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let mut line = String::new();
                let _ = writeln!(
                    line,
                    "{{\"name\":\"{}\",\"median_ns\":{},\"samples\":{}}}",
                    name.replace('"', "'"),
                    med,
                    measured.len()
                );
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
            }
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_name();
        if self.selected(&name) {
            let mut b = Bencher {
                samples: self.sample_size,
                measured: Vec::new(),
            };
            f(&mut b);
            self.report(&name, &mut b.measured);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmark cases sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, case: String, mut f: F) {
        let full = format!("{}/{}", self.name, case);
        if self.parent.selected(&full) {
            let samples = self.sample_size.unwrap_or(self.parent.sample_size);
            let mut b = Bencher {
                samples,
                measured: Vec::new(),
            };
            f(&mut b);
            self.parent.report(&full, &mut b.measured);
        }
    }

    /// Runs one case of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run(id.into_name(), f);
        self
    }

    /// Runs one case parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_name(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; output is streamed).
    pub fn finish(self) {}
}

/// Throughput annotation (accepted and ignored).
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_cases_get_prefixed_and_filtered() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("keep".into()),
        };
        let mut kept = 0u32;
        let mut dropped = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("keep_this", |b| b.iter(|| kept += 1));
            g.bench_with_input(BenchmarkId::from_parameter("other"), &1u32, |b, _| {
                b.iter(|| dropped += 1)
            });
            g.finish();
        }
        assert!(kept > 0);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn median_of_samples() {
        let mut v = vec![
            Duration::from_nanos(5),
            Duration::from_nanos(1),
            Duration::from_nanos(9),
        ];
        assert_eq!(median_ns(&mut v), 5);
        assert_eq!(median_ns(&mut []), 0);
    }
}
