//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the slice of proptest's API the workspace's property tests
//! use: the [`Strategy`] trait over ranges / tuples / [`Just`] /
//! `prop_map` / [`collection::vec`], the [`proptest!`], [`prop_oneof!`]
//! and `prop_assert*` macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (all
//!   strategy values are `Debug`) and the case number, then re-panics.
//! * **Deterministic.** Cases derive from a fixed per-test seed (FNV of
//!   the test name, XORed with the case index), so failures reproduce
//!   exactly on re-run. Set `PROPTEST_CASES` to override the default
//!   case count (64) for tests that don't pin one via
//!   `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Configuration types, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Copy, Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut SmallRng) -> T>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Copy, Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Everything a property test module needs, one glob-import away.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// FNV-1a, used to derive a per-test RNG seed from the test's name.
#[doc(hidden)]
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub use rand::rngs::SmallRng as __SmallRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            let __base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strat;)+
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = <$crate::__SmallRng as $crate::__SeedableRng>::seed_from_u64(
                    __base ^ (__case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                );
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                let __inputs = format!("{:?}", ($(&$arg,)+));
                let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || { $body },
                ));
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed; inputs: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __inputs,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{__SeedableRng, __SmallRng, fnv1a};

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = __SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u32..9), &mut rng);
            assert!((5..9).contains(&v));
            let w = Strategy::generate(&(0usize..=3), &mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn map_union_and_vec_compose() {
        let mut rng = __SmallRng::seed_from_u64(2);
        let strat = prop_oneof![Just(0u8), (1u8..3).prop_map(|v| v * 10),];
        let seen: Vec<u8> = (0..100)
            .map(|_| Strategy::generate(&strat, &mut rng))
            .collect();
        assert!(seen.iter().all(|v| [0, 10, 20].contains(v)));
        let vs = crate::collection::vec(0u8..4, 2..6);
        for _ in 0..100 {
            let v = Strategy::generate(&vs, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("stable"), fnv1a("stable"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, trailing comma, config.
        #[test]
        fn macro_end_to_end(
            a in 0u64..100,
            pair in (0u8..4, 1usize..5),
        ) {
            prop_assert!(a < 100);
            let (x, n) = pair;
            prop_assert!(x < 4 && (1..5).contains(&n));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
