//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` 0.8's API that the simulator uses:
//!
//! * [`rngs::SmallRng`] — a deterministic xoshiro256++ generator seeded
//!   through [`SeedableRng::seed_from_u64`] (SplitMix64 expansion, the
//!   same construction the real crate documents for seeding).
//! * [`Rng`] — `gen`, `gen_range` over integer/float ranges, `gen_bool`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The stream is **not** bit-compatible with upstream `rand`; every
//! consumer in this workspace only relies on determinism for a fixed
//! seed, which this implementation guarantees (and locks down in tests).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `u64` constructor is used here.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 so nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with uniform sampling over half-open / closed intervals.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges [`Rng::gen_range`] accepts.
///
/// One generic impl per range shape (matching upstream `rand`) keeps
/// integer-literal inference working: `gen_range(0..4096) * 64u64`
/// unifies the literal with `u64` instead of defaulting to `i32`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let bound = hi as i128 + i128::from(inclusive);
                assert!((lo as i128) < bound, "cannot sample empty range");
                let span = (bound - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A value uniform in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = SmallRng::splitmix64(&mut state);
            }
            // xoshiro256++ requires a nonzero state; SplitMix64 only
            // yields all-zero output with negligible probability, but be
            // exact about it.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SmallRng::seed_from_u64(13);
        let v = [1u8, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut r).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
